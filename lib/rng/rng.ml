type t = { gen : Xoshiro256.t }

let create seed = { gen = Xoshiro256.of_seed (Int64.of_int seed) }

(* Children are reseeded through SplitMix64 from the parent's next
   output rather than placed with xoshiro's jump: consecutive parent
   states are consecutive orbit positions, so jumped children would be
   the same stream shifted by one draw — catastrophically correlated
   Monte-Carlo repetitions.  Reseeding lands children at unrelated
   orbit positions. *)
let split t = { gen = Xoshiro256.of_seed (Xoshiro256.next t.gen) }

(* Indexed derivation: the i-th child of a 64-bit base is the i-th
   sequential SplitMix64 split of that base, computed in O(1) as
   mix (base + (i+1) * gamma).  Unlike [split], deriving child i does
   not require materialising children 0..i-1, so a parallel runner can
   hand replicate i to any domain and still produce the exact stream a
   sequential pass would have — bit-identical samples for any domain
   count, and stable when replicates are re-run out of order on
   resume. *)
let derive base i =
  if i < 0 then invalid_arg "Rng.derive: negative child index";
  let z =
    Int64.add base (Int64.mul Splitmix64.golden_gamma (Int64.of_int (i + 1)))
  in
  { gen = Xoshiro256.of_seed (Splitmix64.mix z) }

let copy t = { gen = Xoshiro256.copy t.gen }

let bits64 t = Xoshiro256.next t.gen

(* Lemire-style rejection for unbiased bounded integers. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  (* Use 63 usable bits so that values are non-negative as OCaml ints. *)
  let mask_bits =
    let rec bits b acc = if b = 0L then acc else bits (Int64.shift_right_logical b 1) (acc + 1) in
    bits (Int64.of_int (bound - 1)) 0
  in
  let mask = Int64.sub (Int64.shift_left 1L (max 1 mask_bits)) 1L in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask in
    if Int64.compare r bound64 < 0 then Int64.to_int r else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* Top 53 bits -> [0, 1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let float_pos t = 1.0 -. float t

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else float t < p

let shuffle_in_place t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || n < 0 || k > n then
    invalid_arg "Rng.sample_without_replacement: need 0 <= k <= n";
  if k = 0 then [||]
  else if 2 * k >= n then begin
    (* Dense case: partial Fisher-Yates over the full universe. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int t n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end

let choose t a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t n)
