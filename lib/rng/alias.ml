type t = {
  prob : float array;  (* scaled probability of keeping column i *)
  alias : int array;
  weights : float array;
  total : float;
}

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.create: empty weight array";
  Array.iter
    (fun w ->
      if not (Float.is_finite w) || w < 0. then
        invalid_arg "Alias.create: weights must be finite and non-negative")
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Alias.create: all weights are zero";
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  (* Numerical leftovers keep probability 1. *)
  { prob; alias; weights = Array.copy weights; total }

let size t = Array.length t.prob

let sample t rng =
  let n = Array.length t.prob in
  let i = Rng.int rng n in
  if Rng.float rng < t.prob.(i) then i else t.alias.(i)

let probability t i = t.weights.(i) /. t.total
