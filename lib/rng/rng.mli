(** Deterministic random source used everywhere in the library.

    Every randomized component (graph generators, simulators,
    Monte-Carlo runners) takes an explicit [Rng.t]; nothing touches the
    global [Stdlib.Random] state, so every experiment is reproducible
    from its integer seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Identical
    seeds give identical streams. *)

val split : t -> t
(** An independent child generator, seeded through SplitMix64 from the
    parent's next output (the parent advances by one draw).  Use one
    child per Monte-Carlo repetition so that adding repetitions never
    perturbs earlier ones. *)

val derive : int64 -> int -> t
(** [derive base i] is the [i]-th child of the 64-bit seed [base]:
    exactly the [i]-th sequential SplitMix64 split of [base], computed
    in O(1) without touching children [0..i-1].  The Monte-Carlo
    runners draw [base] once per sweep (one {!bits64} draw of the
    parent) and key every replicate's stream by its index, which makes
    samples bit-identical for any number of worker domains and lets a
    resumed sweep re-run only missing replicate indices.
    @raise Invalid_argument if [i < 0]. *)

val copy : t -> t
(** Snapshot of the current state. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [{0, ..., bound-1}] without modulo
    bias.  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [{lo, ..., hi}] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** Uniform on [[0, 1)], with 53 bits of precision. *)

val float_pos : t -> float
(** Uniform on [(0, 1]]; never returns 0, safe for [log]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to
    [[0, 1]]). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct elements of
    [{0, ..., n-1}], in uniformly random order.
    @raise Invalid_argument if [k < 0], [n < 0] or [k > n]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
