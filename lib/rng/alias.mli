(** Walker/Vose alias method: O(1) sampling from a fixed discrete
    distribution after O(n) preprocessing.

    The engines sample the evolving cut through a Fenwick tree
    (weights change every event); the alias table is the right tool
    when a distribution is fixed across many draws — workload
    generators and tests use it. *)

type t

val create : float array -> t
(** [create weights] preprocesses non-negative weights (not necessarily
    normalised).
    @raise Invalid_argument if the array is empty, any weight is
    negative or non-finite, or all weights are zero. *)

val size : t -> int

val sample : t -> Rng.t -> int
(** Index drawn with probability proportional to its weight. *)

val probability : t -> int -> float
(** Normalised probability of index [i] (for tests). *)
