let exponential t ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log (Rng.float_pos t) /. rate

(* Knuth's multiplicative method: exact, O(rate). *)
let poisson_small t rate =
  let limit = exp (-.rate) in
  let rec loop k prod =
    let prod = prod *. Rng.float_pos t in
    if prod <= limit then k else loop (k + 1) prod
  in
  loop 0 1.0

(* PTRS transformed-rejection sampler (Hormann 1993), exact for rate >= 10. *)
let poisson_ptrs t rate =
  let log_rate = log rate in
  let b = 0.931 +. (2.53 *. sqrt rate) in
  let a = -0.059 +. (0.02483 *. b) in
  let inv_alpha = 1.1239 +. (1.1328 /. (b -. 3.4)) in
  let v_r = 0.9277 -. (3.6224 /. (b -. 2.)) in
  let rec log_factorial k =
    (* Stirling with correction for small k, exact lgamma-free. *)
    if k < 10 then log (float_of_int (fact k))
    else
      let kf = float_of_int k in
      ((kf +. 0.5) *. log kf) -. kf
      +. (0.5 *. log (2. *. Float.pi))
      +. (1. /. (12. *. kf))
      -. (1. /. (360. *. kf *. kf *. kf))
  and fact k = if k <= 1 then 1 else k * fact (k - 1) in
  let rec draw () =
    let u = Rng.float t -. 0.5 in
    let v = Rng.float_pos t in
    let us = 0.5 -. Float.abs u in
    let k = int_of_float (Float.round (((2. *. a /. us) +. b) *. u +. rate +. 0.43)) in
    if us >= 0.07 && v <= v_r then k
    else if k < 0 || (us < 0.013 && v > us) then draw ()
    else
      let lhs = log (v *. inv_alpha /. ((a /. (us *. us)) +. b)) in
      let rhs = (-.rate) +. (float_of_int k *. log_rate) -. log_factorial k in
      if lhs <= rhs then k else draw ()
  in
  draw ()

let poisson t ~rate =
  if rate < 0. then invalid_arg "Dist.poisson: rate must be non-negative";
  if rate = 0. then 0
  else if rate < 10. then poisson_small t rate
  else poisson_ptrs t rate

let geometric t ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: need 0 < p <= 1";
  if p = 1. then 1
  else
    (* Inversion: ceil(log U / log(1-p)). *)
    let u = Rng.float_pos t in
    let k = Float.to_int (Float.ceil (log u /. log (1. -. p))) in
    max 1 k

let binomial t ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n must be non-negative";
  if p < 0. || p > 1. then invalid_arg "Dist.binomial: p must be in [0,1]";
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.float t < p then incr count
  done;
  !count

let uniform_float t ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform_float: hi < lo";
  lo +. ((hi -. lo) *. Rng.float t)

let poisson_process_count t ~rate ~horizon =
  if horizon <= 0. || rate <= 0. then 0 else poisson t ~rate:(rate *. horizon)

let nonhomogeneous_count t ~rate_at ~a ~b ~steps =
  if b <= a then 0
  else begin
    let h = (b -. a) /. float_of_int steps in
    let total = ref 0. in
    for i = 0 to steps - 1 do
      let mid = a +. ((float_of_int i +. 0.5) *. h) in
      total := !total +. (rate_at mid *. h)
    done;
    poisson t ~rate:!total
  end
