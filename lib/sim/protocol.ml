type t = Push | Pull | Push_pull

let caller_informs_callee = function
  | Push | Push_pull -> true
  | Pull -> false

let callee_informs_caller = function
  | Pull | Push_pull -> true
  | Push -> false

let apply t ~caller_informed ~callee_informed =
  let callee' =
    callee_informed || (caller_informed && caller_informs_callee t)
  in
  let caller' =
    caller_informed || (callee_informed && callee_informs_caller t)
  in
  (caller', callee')

let to_string = function
  | Push -> "push"
  | Pull -> "pull"
  | Push_pull -> "push-pull"

let all = [ Push; Pull; Push_pull ]
