open Rumor_util
open Rumor_rng

type outcome = {
  reached_last : bool;
  informed_last : int;
  informed_total : int;
}

let validate clusters =
  let kk = Array.length clusters in
  if kk < 2 then invalid_arg "Coupling: need at least 2 clusters";
  let delta = Array.length clusters.(0) in
  Array.iter
    (fun c ->
      if Array.length c <> delta then
        invalid_arg "Coupling: ragged cluster sizes")
    clusters;
  if delta = 0 then invalid_arg "Coupling: empty clusters";
  delta

let string_sets clusters =
  let max_id =
    Array.fold_left
      (fun acc c -> Array.fold_left (fun a u -> max a u) acc c)
      0 clusters
  in
  let members = Bitset.create (max_id + 1) in
  let where = Hashtbl.create 64 in
  Array.iteri
    (fun ci cluster ->
      Array.iteri
        (fun ii u ->
          ignore (Bitset.add members u);
          Hashtbl.replace where u (ci, ii))
        cluster)
    clusters;
  (members, where)

(* Common tick-driven simulation over the string.  [targets ci] gives
   the clusters an informed node of cluster [ci] may push into. *)
let simulate rng clusters ~horizon ~targets =
  let delta = validate clusters in
  let kk = Array.length clusters in
  let n_string = kk * delta in
  (* informed.(ci).(ii) per cluster slot. *)
  let informed = Array.map (fun c -> Array.map (fun _ -> false) c) clusters in
  Array.iteri (fun ii _ -> informed.(0).(ii) <- true) clusters.(0);
  let informed_count = ref delta in
  let tau = ref 0. in
  let total_rate = 2. *. float_of_int n_string in
  let finished = ref false in
  while not !finished do
    tau := !tau +. (-.log (Rng.float_pos rng) /. total_rate);
    if !tau >= horizon then finished := true
    else begin
      (* Uniform string node ticks. *)
      let idx = Rng.int rng n_string in
      let ci = idx / delta and ii = idx mod delta in
      if informed.(ci).(ii) then begin
        match targets ci with
        | [] -> ()
        | choices ->
          (* Uniform neighbour across the allowed clusters (complete
             bipartite wiring: every slot of each allowed cluster). *)
          let pick = Rng.int rng (List.length choices * delta) in
          let target_cluster = List.nth choices (pick / delta) in
          let target_slot = pick mod delta in
          if not informed.(target_cluster).(target_slot) then begin
            informed.(target_cluster).(target_slot) <- true;
            incr informed_count
          end
      end
    end
  done;
  let informed_last =
    Array.fold_left
      (fun acc b -> if b then acc + 1 else acc)
      0
      informed.(kk - 1)
  in
  {
    reached_last = informed_last > 0;
    informed_last;
    informed_total = !informed_count;
  }

let two_push rng ~clusters ~horizon =
  let kk = Array.length clusters in
  let targets ci =
    (if ci > 0 then [ ci - 1 ] else []) @ if ci < kk - 1 then [ ci + 1 ] else []
  in
  simulate rng clusters ~horizon ~targets

let forward_two_push rng ~clusters ~horizon =
  let kk = Array.length clusters in
  let targets ci = if ci < kk - 1 then [ ci + 1 ] else [] in
  simulate rng clusters ~horizon ~targets

let factorial_bound ~k ~delta =
  let rec fact i acc = if i <= 1 then acc else fact (i - 1) (acc *. float_of_int i) in
  2. ** float_of_int k /. fact k 1. *. float_of_int delta
