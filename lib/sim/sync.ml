open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

type result = {
  rounds : int;
  complete : bool;
  informed : Bitset.t;
  trace : int array;
}

let run ?(protocol = Protocol.Push_pull) ?(max_rounds = 1_000_000) rng
    (net : Dynet.t) ~source =
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Sync.run: source %d out of range" source);
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let trace = ref [ Bitset.cardinal informed ] in
  let rounds = ref 0 in
  let complete = ref (Bitset.is_full informed) in
  while (not !complete) && !rounds < max_rounds do
    let graph = (Dynet.next instance ~informed).Dynet.graph in
    let snapshot = Bitset.copy informed in
    for u = 0 to n - 1 do
      let deg = Graph.degree graph u in
      if deg > 0 then begin
        let v = Graph.neighbor graph u (Rng.int rng deg) in
        let u_informed = Bitset.mem snapshot u
        and v_informed = Bitset.mem snapshot v in
        let u', v' =
          Protocol.apply protocol ~caller_informed:u_informed
            ~callee_informed:v_informed
        in
        if u' then ignore (Bitset.add informed u);
        if v' then ignore (Bitset.add informed v)
      end
    done;
    incr rounds;
    trace := Bitset.cardinal informed :: !trace;
    if Bitset.is_full informed then complete := true
  done;
  {
    rounds = !rounds;
    complete = !complete;
    informed;
    trace = Array.of_list (List.rev !trace);
  }
