open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics

(* Telemetry (lib/obs), flushed once per run. *)
let m_runs = Obs.counter "sync.runs"
let m_completed = Obs.counter "sync.completed"
let m_censored = Obs.counter "sync.censored"
let m_rounds = Obs.counter "sync.rounds"
let m_contacts = Obs.counter "sync.contacts"
let m_informs = Obs.counter "sync.informs"

type result = {
  rounds : int;
  complete : bool;
  informed : Bitset.t;
  trace : int array;
}

let run ?(protocol = Protocol.Push_pull) ?(max_rounds = 1_000_000)
    ?(faults = Fault_plan.none) rng (net : Dynet.t) ~source =
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Sync.run: source %d out of range" source);
  let fstate = Fault_plan.init faults ~n in
  let push_ok = Protocol.caller_informs_callee protocol in
  let pull_ok = Protocol.callee_informs_caller protocol in
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let trace = ref [ Bitset.cardinal informed ] in
  let rounds = ref 0 in
  let contacts = ref 0 in
  let complete = ref (Bitset.is_full informed) in
  while (not !complete) && !rounds < max_rounds do
    let graph = (Dynet.next instance ~informed).Dynet.graph in
    (* Round r consumes graph step r; the fault chain advances in
       lockstep (node_rate has no meaning without clocks and is
       ignored here). *)
    if !rounds > 0 then ignore (Fault_plan.advance fstate rng ~step:!rounds);
    let snapshot = Bitset.copy informed in
    for u = 0 to n - 1 do
      if Fault_plan.alive fstate u then begin
        (* [u] ranges over [0, n) by construction: unchecked access. *)
        let deg = Graph.unsafe_degree graph u in
        if deg > 0 then begin
          let v = Graph.unsafe_neighbor graph u (Rng.int rng deg) in
          incr contacts;
          if Fault_plan.allows fstate u v then begin
            let u_informed = Bitset.mem snapshot u
            and v_informed = Bitset.mem snapshot v in
            if
              (not v_informed) && u_informed && push_ok
              && Fault_plan.deliver fstate rng
            then ignore (Bitset.add informed v);
            if
              (not u_informed) && v_informed && pull_ok
              && Fault_plan.deliver fstate rng
            then ignore (Bitset.add informed u)
          end
        end
      end
    done;
    incr rounds;
    trace := Bitset.cardinal informed :: !trace;
    if Bitset.is_full informed then complete := true
  done;
  if Obs.enabled () then begin
    Obs.incr m_runs;
    Obs.incr (if !complete then m_completed else m_censored);
    Obs.add m_rounds !rounds;
    Obs.add m_contacts !contacts;
    Obs.add m_informs (Bitset.cardinal informed - 1)
  end;
  {
    rounds = !rounds;
    complete = !complete;
    informed;
    trace = Array.of_list (List.rev !trace);
  }
