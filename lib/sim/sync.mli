(** Round-synchronous rumor spreading (the classical push–pull the
    paper contrasts against in Section 6).

    In round [t] every node simultaneously contacts one uniformly
    random neighbour of [G(t)]; exchanges are evaluated against the
    {e round-start} informed set, so a node informed during a round
    cannot relay within the same round — the semantics the [T_s(G2) = n]
    lower bound of Theorem 1.7(ii) depends on. *)

open Rumor_util
open Rumor_rng
open Rumor_dynamic
open Rumor_faults

type result = {
  rounds : int;  (** rounds executed; the spread time when [complete] *)
  complete : bool;
  informed : Bitset.t;
  trace : int array;
      (** informed count after each round, starting with the count
          before round 0 (always recorded; one int per round is
          cheap) *)
}

val run :
  ?protocol:Protocol.t ->
  ?max_rounds:int ->
  ?faults:Fault_plan.t ->
  Rng.t ->
  Dynet.t ->
  source:int ->
  result
(** [run rng net ~source] until complete or [max_rounds] (default
    1_000_000) rounds.

    [faults] (default {!Fault_plan.none}) injects per-message loss,
    crash/recovery churn (a crashed node does not contact anyone and
    contacts with it do nothing; the churn chain advances once per
    round) and partition windows.  [node_rate] heterogeneity is
    meaningless without clocks and is ignored by this engine.

    @raise Invalid_argument if [source] is out of range. *)
