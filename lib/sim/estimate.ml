open Rumor_dynamic
module Obs = Rumor_obs.Metrics
module Adaptive = Rumor_stats.Adaptive
module Stream = Rumor_stats.Stream

(* Telemetry (lib/obs). *)
let m_calls = Obs.counter "estimate.calls"
let m_censored_quantiles = Obs.counter "estimate.censored_quantiles"
let m_adaptive_calls = Obs.counter "estimate.adaptive_calls"

type t = {
  point : float;
  ci_low : float;
  ci_high : float;
  q : float;
  samples : float array;
  completed : int;
  censored : int;
  reps : int;
}

let whp_quantile ~n =
  if n < 2 then 0.5 else Float.min 0.999 (1. -. (1. /. float_of_int n))

(* The top [censored] order statistics are right-censored at the
   horizon: the true spread times exceed the recorded values.  A
   type-7 quantile interpolates between the order statistics at
   floor(h) and ceil(h) with h = q(reps-1); whenever ceil(h) reaches
   into the censored block the "estimate" is only a lower bound, so it
   must be flagged, not silently reported. *)
let quantile_censored ~reps ~censored q =
  censored > 0
  &&
  let h = q *. float_of_int (reps - 1) in
  int_of_float (Float.ceil h) >= reps - censored

let spread_time ?jobs ?(reps = 200) ?q ?horizon ?engine ?protocol ?rate ?faults
    ?(level = 0.95) ?source rng (net : Dynet.t) =
  let q = match q with Some q -> q | None -> whp_quantile ~n:net.Dynet.n in
  let mc =
    Run.async_spread_times ?jobs ~reps ?horizon ?engine ?protocol ?rate ?faults
      ?source rng net
  in
  let samples = mc.Run.times in
  let completed = mc.Run.completed in
  let censored = mc.Run.reps - completed in
  Obs.incr m_calls;
  if quantile_censored ~reps:mc.Run.reps ~censored q then begin
    Obs.incr m_censored_quantiles;
    (* The requested quantile falls inside the censored mass: the
       finite sample quantile is a lower confidence bound, the point
       estimate and upper bound are unknown (infinite). *)
    {
      point = Float.infinity;
      ci_low = Rumor_stats.Quantile.quantile samples q;
      ci_high = Float.infinity;
      q;
      samples;
      completed;
      censored;
      reps = mc.Run.reps;
    }
  end
  else begin
    let point = Rumor_stats.Quantile.quantile samples q in
    let ci_low, ci_high =
      Rumor_stats.Bootstrap.ci rng
        ~statistic:(fun xs -> Rumor_stats.Quantile.quantile xs q)
        samples ~level
    in
    { point; ci_low; ci_high; q; samples; completed; censored; reps = mc.Run.reps }
  end

let pp fmt t =
  Format.fprintf fmt "q%.3f spread time %.3f [%.3f, %.3f] (%d/%d complete%s)"
    t.q t.point t.ci_low t.ci_high t.completed t.reps
    (if t.censored > 0 then Printf.sprintf ", %d censored" t.censored else "")

(* --- adaptive mean estimate --- *)

type adaptive = {
  mean : float;
  half_width : float;
  level : float;
  target_width : float;
  consumed : int;
  used : int;
  saved : int;
  reason : Adaptive.reason;
  variance_ratio : float option;
  beta : float option;
}

let spread_time_adaptive ?jobs ?horizon ?engine ?protocol ?rate ?faults
    ?source ?max_events ?checkpoint ?deadline_s ?control ~config rng net =
  Obs.incr m_adaptive_calls;
  let a =
    Run.async_spread_sweep_adaptive ?jobs ?horizon ?engine ?protocol ?rate
      ?faults ?source ?max_events ?checkpoint ?deadline_s ?control ~config rng
      net
  in
  ( {
      mean = a.Run.mean;
      half_width = a.Run.half_width;
      level = a.Run.level;
      target_width = a.Run.target_width;
      consumed = a.Run.consumed;
      used = a.Run.used;
      saved = a.Run.max_reps - a.Run.consumed;
      reason = a.Run.reason;
      variance_ratio =
        Option.map (fun c -> c.Adaptive.variance_ratio) a.Run.control;
      beta = Option.map (fun c -> c.Adaptive.beta) a.Run.control;
    },
    a.Run.sweep )

let pp_adaptive fmt a =
  Format.fprintf fmt
    "mean spread time %.3f ± %.3f (%.0f%% CI, target %.3f, %s after %d/%d \
     reps%s)"
    a.mean a.half_width (100. *. a.level) a.target_width
    (match a.reason with
    | Adaptive.Converged -> "converged"
    | Adaptive.Budget -> "budget")
    a.consumed (a.consumed + a.saved)
    (match a.variance_ratio with
    | Some vr -> Printf.sprintf ", cv %.1fx" vr
    | None -> "")

(* --- stratified-by-source estimate --- *)

type stratified = {
  mean : float;
  half_width : float;
  level : float;
  sources : int array;
  allocation : int array;
  per_stratum : (float * float * int) array;
}

let stratum_stats mc =
  let s = Stream.create () in
  Array.iter (Stream.add s) mc.Run.times;
  (Stream.mean s, Stream.stddev s, Stream.count s)

let stratified_spread_time ?jobs ?horizon ?engine ?protocol ?rate
    ?(level = 0.95) ?(pilot = 8) ?(min_per = 4) ~budget ~sources rng net =
  let k = Array.length sources in
  if k = 0 then invalid_arg "Estimate.stratified_spread_time: no sources";
  (* Pilot pass sizes the Neyman allocation; the final pass draws fresh
     index-keyed streams, so the estimate stays bit-identical for any
     [jobs] (the rng is consumed in fixed stratum order). *)
  let sds =
    Array.map
      (fun source ->
        let mc =
          Run.async_spread_times ?jobs ~reps:pilot ?horizon ?engine ?protocol
            ?rate ~source rng net
        in
        let _, sd, _ = stratum_stats mc in
        sd)
      sources
  in
  let allocation = Adaptive.Strata.neyman ~budget ~min_per ~sds in
  let per_stratum =
    Array.mapi
      (fun i source ->
        let mc =
          Run.async_spread_times ?jobs ~reps:allocation.(i) ?horizon ?engine
            ?protocol ?rate ~source rng net
        in
        stratum_stats mc)
      sources
  in
  let means = Array.map (fun (m, _, _) -> m) per_stratum in
  let f_sds = Array.map (fun (_, s, _) -> s) per_stratum in
  let counts = Array.map (fun (_, _, c) -> c) per_stratum in
  let mean, half_width =
    Adaptive.Strata.combine ~level ~means ~sds:f_sds ~counts
  in
  { mean; half_width; level; sources; allocation; per_stratum }
