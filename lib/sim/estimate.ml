open Rumor_dynamic

type t = {
  point : float;
  ci_low : float;
  ci_high : float;
  q : float;
  samples : float array;
  completed : int;
  reps : int;
}

let whp_quantile ~n =
  if n < 2 then 0.5 else Float.min 0.999 (1. -. (1. /. float_of_int n))

let spread_time ?(reps = 200) ?q ?horizon ?engine ?protocol ?(level = 0.95)
    ?source rng (net : Dynet.t) =
  let q = match q with Some q -> q | None -> whp_quantile ~n:net.Dynet.n in
  let mc = Run.async_spread_times ~reps ?horizon ?engine ?protocol ?source rng net in
  let samples = mc.Run.times in
  let point = Rumor_stats.Quantile.quantile samples q in
  let ci_low, ci_high =
    Rumor_stats.Bootstrap.ci rng
      ~statistic:(fun xs -> Rumor_stats.Quantile.quantile xs q)
      samples ~level
  in
  { point; ci_low; ci_high; q; samples; completed = mc.Run.completed; reps }

let pp fmt t =
  Format.fprintf fmt "q%.3f spread time %.3f [%.3f, %.3f] (%d/%d complete)"
    t.q t.point t.ci_low t.ci_high t.completed t.reps
