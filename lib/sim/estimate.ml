open Rumor_dynamic
module Obs = Rumor_obs.Metrics

(* Telemetry (lib/obs). *)
let m_calls = Obs.counter "estimate.calls"
let m_censored_quantiles = Obs.counter "estimate.censored_quantiles"

type t = {
  point : float;
  ci_low : float;
  ci_high : float;
  q : float;
  samples : float array;
  completed : int;
  censored : int;
  reps : int;
}

let whp_quantile ~n =
  if n < 2 then 0.5 else Float.min 0.999 (1. -. (1. /. float_of_int n))

(* The top [censored] order statistics are right-censored at the
   horizon: the true spread times exceed the recorded values.  A
   type-7 quantile interpolates between the order statistics at
   floor(h) and ceil(h) with h = q(reps-1); whenever ceil(h) reaches
   into the censored block the "estimate" is only a lower bound, so it
   must be flagged, not silently reported. *)
let quantile_censored ~reps ~censored q =
  censored > 0
  &&
  let h = q *. float_of_int (reps - 1) in
  int_of_float (Float.ceil h) >= reps - censored

let spread_time ?jobs ?(reps = 200) ?q ?horizon ?engine ?protocol ?rate ?faults
    ?(level = 0.95) ?source rng (net : Dynet.t) =
  let q = match q with Some q -> q | None -> whp_quantile ~n:net.Dynet.n in
  let mc =
    Run.async_spread_times ?jobs ~reps ?horizon ?engine ?protocol ?rate ?faults
      ?source rng net
  in
  let samples = mc.Run.times in
  let completed = mc.Run.completed in
  let censored = mc.Run.reps - completed in
  Obs.incr m_calls;
  if quantile_censored ~reps:mc.Run.reps ~censored q then begin
    Obs.incr m_censored_quantiles;
    (* The requested quantile falls inside the censored mass: the
       finite sample quantile is a lower confidence bound, the point
       estimate and upper bound are unknown (infinite). *)
    {
      point = Float.infinity;
      ci_low = Rumor_stats.Quantile.quantile samples q;
      ci_high = Float.infinity;
      q;
      samples;
      completed;
      censored;
      reps = mc.Run.reps;
    }
  end
  else begin
    let point = Rumor_stats.Quantile.quantile samples q in
    let ci_low, ci_high =
      Rumor_stats.Bootstrap.ci rng
        ~statistic:(fun xs -> Rumor_stats.Quantile.quantile xs q)
        samples ~level
    in
    { point; ci_low; ci_high; q; samples; completed; censored; reps = mc.Run.reps }
  end

let pp fmt t =
  Format.fprintf fmt "q%.3f spread time %.3f [%.3f, %.3f] (%d/%d complete%s)"
    t.q t.point t.ci_low t.ci_high t.completed t.reps
    (if t.censored > 0 then Printf.sprintf ", %d censored" t.censored else "")
