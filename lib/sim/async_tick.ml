open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

let run ?(protocol = Protocol.Push_pull) ?(rate = 1.0) ?(horizon = 1e5)
    ?(record_trace = false) rng (net : Dynet.t) ~source =
  if rate <= 0. then invalid_arg "Async_tick.run: rate must be positive";
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Async_tick.run: source %d out of range" source);
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let informed_times = Array.make n Float.nan in
  informed_times.(source) <- 0.;
  let trace = ref [] in
  let record tau =
    if record_trace then trace := (tau, Bitset.cardinal informed) :: !trace
  in
  record 0.;
  let graph = ref (Dynet.next instance ~informed).Dynet.graph in
  let total_rate = float_of_int n *. rate in
  let tau = ref 0. in
  let step = ref 0 in
  let ticks = ref 0 in
  let finished = ref false in
  let out_of_time = ref false in
  while (not !finished) && not !out_of_time do
    if Bitset.is_full informed then finished := true
    else begin
      let next_tick = !tau +. (-.log (Rng.float_pos rng) /. total_rate) in
      (* Cross any step boundaries before the tick lands. *)
      while
        (not !out_of_time) && float_of_int (!step + 1) <= next_tick
      do
        incr step;
        if float_of_int !step >= horizon then out_of_time := true
        else graph := (Dynet.next instance ~informed).Dynet.graph
      done;
      if not !out_of_time then begin
        tau := next_tick;
        incr ticks;
        let u = Rng.int rng n in
        let deg = Graph.degree !graph u in
        if deg > 0 then begin
          let v = Graph.neighbor !graph u (Rng.int rng deg) in
          let u_informed = Bitset.mem informed u
          and v_informed = Bitset.mem informed v in
          let u', v' =
            Protocol.apply protocol ~caller_informed:u_informed
              ~callee_informed:v_informed
          in
          let changed = ref false in
          if u' && not u_informed then begin
            changed := Bitset.add informed u || !changed;
            informed_times.(u) <- !tau
          end;
          if v' && not v_informed then begin
            changed := Bitset.add informed v || !changed;
            informed_times.(v) <- !tau
          end;
          if !changed then record !tau
        end
      end
    end
  done;
  {
    Async_result.time = (if !finished then !tau else float_of_int !step);
    complete = !finished;
    informed;
    events = !ticks;
    steps = !step + 1;
    trace = Array.of_list (List.rev !trace);
    informed_times;
  }
