open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics

(* Telemetry (lib/obs): the literal engine already keeps its tallies
   in local refs; they are flushed into the registry once per run. *)
let m_runs = Obs.counter "async_tick.runs"
let m_completed = Obs.counter "async_tick.completed"
let m_censored = Obs.counter "async_tick.censored"
let m_ticks = Obs.counter "async_tick.ticks"
let m_informs = Obs.counter "async_tick.informs"
let m_lost = Obs.counter "async_tick.lost"
let m_steps = Obs.counter "async_tick.steps"

let run ?(protocol = Protocol.Push_pull) ?(rate = 1.0)
    ?(faults = Fault_plan.none) ?(horizon = 1e5) ?max_events ?stop
    ?(record_trace = false) rng (net : Dynet.t) ~source =
  if rate <= 0. then invalid_arg "Async_tick.run: rate must be positive";
  let should_stop =
    match stop with None -> (fun () -> false) | Some f -> f
  in
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Async_tick.run: source %d out of range" source);
  let budget =
    match max_events with
    | None -> max_int
    | Some b ->
      if b < 1 then invalid_arg "Async_tick.run: max_events must be positive";
      b
  in
  let fstate = Fault_plan.init faults ~n in
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let informed_times = Array.make n Float.nan in
  informed_times.(source) <- 0.;
  let trace = ref [] in
  let record tau =
    if record_trace then trace := (tau, Bitset.cardinal informed) :: !trace
  in
  record 0.;
  let graph = ref (Dynet.next instance ~informed).Dynet.graph in
  (* Heterogeneous clocks: the superposition still ticks at the summed
     rate; the ticking node is the rates' categorical sample (an alias
     table, since the rates are fixed for the whole run).  Crashed
     nodes keep "ticking" at their nominal rate but their ticks are
     ignored — thinning again, so no resampling is needed when the
     alive set churns. *)
  let pick_node, total_rate =
    match Fault_plan.node_rates fstate with
    | None -> ((fun () -> Rng.int rng n), float_of_int n *. rate)
    | Some rates ->
      let alias = Alias.create rates in
      ( (fun () -> Alias.sample alias rng),
        rate *. Array.fold_left ( +. ) 0. rates )
  in
  let push_ok = Protocol.caller_informs_callee protocol in
  let pull_ok = Protocol.callee_informs_caller protocol in
  let lost = ref 0 in
  (* One delivery trial per rumor-carrying message (drawn lazily: a
     message that would not change anything needs no trial). *)
  let send () =
    if Fault_plan.deliver fstate rng then true
    else begin
      incr lost;
      false
    end
  in
  let tau = ref 0. in
  let step = ref 0 in
  let ticks = ref 0 in
  let finished = ref false in
  let out_of_time = ref false in
  while (not !finished) && not !out_of_time do
    if Bitset.is_full informed then finished := true
    else begin
      let next_tick = !tau +. (-.log (Rng.float_pos rng) /. total_rate) in
      (* Cross any step boundaries before the tick lands. *)
      while (not !out_of_time) && float_of_int (!step + 1) <= next_tick do
        incr step;
        if float_of_int !step >= horizon then out_of_time := true
        else begin
          graph := (Dynet.next instance ~informed).Dynet.graph;
          ignore (Fault_plan.advance fstate rng ~step:!step)
        end
      done;
      if not !out_of_time then begin
        tau := next_tick;
        incr ticks;
        let u = pick_node () in
        if Fault_plan.alive fstate u then begin
          (* Node ids come from the engine's own sampler over [0, n):
             skip the per-tick bounds checks. *)
          let deg = Graph.unsafe_degree !graph u in
          if deg > 0 then begin
            let v = Graph.unsafe_neighbor !graph u (Rng.int rng deg) in
            if Fault_plan.allows fstate u v then begin
              let u_informed = Bitset.mem informed u
              and v_informed = Bitset.mem informed v in
              let v' = v_informed || (u_informed && push_ok && send ()) in
              let u' = u_informed || (v_informed && pull_ok && send ()) in
              let changed = ref false in
              if u' && not u_informed then begin
                changed := Bitset.add informed u || !changed;
                informed_times.(u) <- !tau
              end;
              if v' && not v_informed then begin
                changed := Bitset.add informed v || !changed;
                informed_times.(v) <- !tau
              end;
              if !changed then record !tau
            end
          end
        end;
        (* [stop] is the supervisor's cooperative brake (wall-clock
           deadlines): polled once per tick, consumes no randomness. *)
        if !ticks >= budget || should_stop () then out_of_time := true
      end
    end
  done;
  if Obs.enabled () then begin
    Obs.incr m_runs;
    Obs.incr (if !finished then m_completed else m_censored);
    Obs.add m_ticks !ticks;
    Obs.add m_informs (Bitset.cardinal informed - 1);
    Obs.add m_lost !lost;
    Obs.add m_steps (!step + 1)
  end;
  {
    (* Horizon stops land on the step boundary (tau <= step); budget
       stops land mid-step (tau >= step) — either way report the
       furthest time actually reached. *)
    Async_result.time = (if !finished then !tau else Float.max !tau (float_of_int !step));
    complete = !finished;
    informed;
    events = !ticks;
    steps = !step + 1;
    lost = !lost;
    trace = Array.of_list (List.rev !trace);
    informed_times;
  }
