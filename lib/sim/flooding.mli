(** Flooding: every informed node informs {e all} its neighbours each
    round — the deterministic upper envelope of every gossip protocol
    and the process studied by the related dynamic-graph work
    ([9, 8, 3]) the paper cites.

    On a static connected graph the flood time from [s] is exactly the
    eccentricity of [s]; the test suite uses this identity. *)

open Rumor_util
open Rumor_rng
open Rumor_dynamic

type result = {
  rounds : int;
  complete : bool;
  informed : Bitset.t;
}

val run : ?max_rounds:int -> Rng.t -> Dynet.t -> source:int -> result
(** Default [max_rounds] is 1_000_000 (dynamic families may need the
    RNG, hence the argument).
    @raise Invalid_argument if [source] is out of range. *)
