(** The coupled processes of Lemma 4.2 / Claim 4.3.

    To bound how fast a rumor can cross the bipartite-cluster string
    [S_0 - S_1 - ... - S_k] of the [H_{k,Delta}] construction within
    one time unit, the paper replaces the push–pull algorithm by two
    simpler processes on the string:

    - the {b 2-push}: every string node carries a rate-2 clock and an
      informed node pushes to a uniformly random string neighbour —
      equivalent in law to push–pull on the string (each edge direction
      fires at total rate [2/(2 Delta)]);
    - the {b forward 2-push}: pushes go only to the next cluster —
      Claim 4.3 couples the two so that the forward process reaches
      [S_k] whenever the 2-push does, giving the clean layered bound
      [E I(1, k) <= (2^k / k!) Delta].

    This module simulates both on an explicit cluster structure, so the
    coupling inequality and the factorial bound can be checked
    directly (experiment L and the test suite). *)

open Rumor_util
open Rumor_rng

type outcome = {
  reached_last : bool;  (** did any node of [S_k] get informed by time 1 *)
  informed_last : int;  (** number of informed nodes in [S_k] at time 1 *)
  informed_total : int;  (** informed string nodes at time 1 *)
}

val two_push : Rng.t -> clusters:int array array -> horizon:float -> outcome
(** Simulate the 2-push on the complete-bipartite string defined by
    [clusters] (as produced by {!Rumor_dynamic.Paper_h.build}); all of
    [clusters.(0)] starts informed.
    @raise Invalid_argument on fewer than 2 clusters, or ragged
    cluster sizes. *)

val forward_two_push :
  Rng.t -> clusters:int array array -> horizon:float -> outcome
(** The forward variant: informed nodes of [S_i] push only into
    [S_{i+1}] (nodes of the last cluster never push). *)

val factorial_bound : k:int -> delta:int -> float
(** The Lemma 4.2 expectation bound [(2^k / k!) * Delta] on the number
    of informed [S_k] nodes at time 1. *)

(**/**)

val string_sets : int array array -> Bitset.t * (int, int * int) Hashtbl.t
(** Internal: membership set over node ids and an id -> (cluster,
    index) map, exposed for tests. *)
