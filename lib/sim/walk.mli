(** Random walks on static and dynamic graphs.

    The paper's related work studies random walks on dynamic graphs
    (Avin, Koucký & Lotker [2]; Sauerwald & Zanetti [23]) — cover
    times, hitting times and return probabilities under evolving
    topology.  This module provides the simulation counterpart: simple
    and lazy walks stepped against a {!Rumor_dynamic.Dynet.t} (one walk
    step per unit of continuous time, graph switching at integer
    steps as everywhere else in this library), with cover-time and
    hitting-time estimators used by tests and the mobile-gossip
    example.

    Classical anchors pinned by the test suite: cover time
    [Theta(n log n)] on the clique (coupon collector),
    [Theta(n^2)] on the cycle. *)

open Rumor_rng
open Rumor_dynamic

type result = {
  steps : int;  (** walk steps taken *)
  visited : int;  (** distinct nodes visited *)
  complete : bool;  (** all nodes visited (cover) / target hit (hitting) *)
}

val cover_time :
  ?laziness:float -> ?max_steps:int -> Rng.t -> Dynet.t -> start:int -> result
(** [cover_time rng net ~start] walks until every node has been
    visited or [max_steps] (default 10_000_000).  [laziness] (default
    0) is the per-step stay-put probability.  A step from an isolated
    node stays put.
    @raise Invalid_argument if [start] is out of range or [laziness]
    is outside [0, 1). *)

val hitting_time :
  ?laziness:float -> ?max_steps:int -> Rng.t -> Dynet.t -> start:int -> target:int -> result
(** Walk until [target] is first visited. *)

val mean_cover_time :
  ?reps:int -> ?laziness:float -> ?max_steps:int -> Rng.t -> Dynet.t -> start:int -> float
(** Monte-Carlo mean of {!cover_time} (default 20 repetitions);
    incomplete runs contribute [max_steps]. *)
