open Rumor_rng
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics
module Pool = Rumor_par.Pool
module Adaptive = Rumor_stats.Adaptive
module Graph = Rumor_graph.Graph

(* Telemetry (lib/obs): replicate accounting for the Monte-Carlo
   runners and a spread-time histogram over completed replicates.
   Worker domains record through per-domain shards merged after the
   pool joins, so the hot path shares nothing and totals stay exact. *)
let m_replicates = Obs.counter "run.replicates"
let m_sweep_replicates = Obs.counter "run.sweep.replicates"
let m_sweep_finished = Obs.counter "run.sweep.finished"
let m_sweep_censored = Obs.counter "run.sweep.censored"
let m_sweep_failed = Obs.counter "run.sweep.failed"
let m_checkpoint_hits = Obs.counter "run.sweep.checkpoint_hits"
let m_checkpoint_writes = Obs.counter "run.sweep.checkpoint_writes"
let h_spread_time = Obs.histogram "run.spread_time"

(* Adaptive (sequential-stopping) sweep accounting: replicates consumed
   versus the fixed-count budget they replaced, split by why the sweep
   stopped.  The variance-reduction gauge carries the last control-
   variate ratio so the bench report can surface it. *)
let m_adaptive_sweeps = Obs.counter "run.adaptive.sweeps"
let m_adaptive_consumed = Obs.counter "run.adaptive.consumed"
let m_adaptive_saved = Obs.counter "run.adaptive.saved"
let m_adaptive_converged = Obs.counter "run.adaptive.converged"
let m_adaptive_budget = Obs.counter "run.adaptive.budget"
let g_adaptive_vr = Obs.gauge "run.adaptive.variance_ratio"

(* Owned by the lib/harness supervision layer (hence the name), but
   incremented here because this is where every replicate's engine
   call lives: a replicate stopped by its wall-clock deadline is
   recorded the moment it is censored, whichever runner ran it. *)
let m_deadline_censored = Obs.counter "harness.deadline_censored"

type engine = Cut | Tick

(* --- per-replicate wall-clock deadlines --- *)

(* Process-wide default, installed by the campaign harness (CLI
   [--deadline]) so that replicates buried inside experiment code —
   which never heard of deadlines — are still bounded.  Deadline
   censoring is inherently machine-dependent (unlike every other
   censoring source), so it is recorded explicitly and never silently
   folded into the sample. *)
let deadline_override : float option Atomic.t = Atomic.make None

let set_default_deadline = function
  | Some s when not (s > 0.) ->
    invalid_arg "Run.set_default_deadline: deadline must be positive"
  | v -> Atomic.set deadline_override v

let default_deadline () = Atomic.get deadline_override

(* Build one replicate's engine [stop] closure: absolute wall-clock
   expiry captured at replicate start.  Returns the checker used for
   attribution too (was this censoring caused by the deadline?). *)
let deadline_clock deadline_s =
  match deadline_s with
  | None -> None
  | Some s ->
    let expiry = Rumor_obs.Clock.now_s () +. s in
    Some (fun () -> Rumor_obs.Clock.now_s () >= expiry)

type mc = {
  times : float array;
  completed : int;
  reps : int;
}

type outcome = Checkpoint.outcome =
  | Finished of float
  | Censored of float
  | Failed of string

type sweep = {
  outcomes : outcome array;
  seeds : int64 array;
}

let source_of (net : Dynet.t) explicit =
  match (explicit, net.source_hint) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> 0

(* Split-seed determinism: one parent draw per sweep yields [base];
   replicate [r] then runs on [Rng.derive base r], a pure function of
   (base, r).  The replicate -> stream map is therefore independent of
   the domain count and of execution order, which is what makes every
   runner below bit-identical for any [jobs] — including under fault
   plans (faults draw from the replicate's own stream) and on
   checkpoint resume (missing indices re-derive the same streams). *)
let monte_carlo ?jobs ~reps rng one =
  let base = Rng.bits64 rng in
  let times = Array.make reps 0. in
  let ok = Array.make reps false in
  let jobs = Pool.resolve ?jobs reps in
  let shards = Array.init jobs (fun _ -> Obs.Shard.create ()) in
  Fun.protect
    (* Merge on the exception path too: observations made before a
       replicate raised are kept, never dropped. *)
    ~finally:(fun () -> Array.iter Obs.Shard.merge shards)
    (fun () ->
      ignore
        (Pool.run ~jobs reps (fun ~domain r ->
             let time, completed = one (Rng.derive base r) in
             times.(r) <- time;
             ok.(r) <- completed;
             if completed then
               Obs.Shard.observe shards.(domain) h_spread_time time)));
  Obs.add m_replicates reps;
  {
    times;
    completed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ok;
    reps;
  }

let async_spread_times ?jobs ?(reps = 30) ?horizon ?(engine = Cut) ?protocol
    ?rate ?faults ?source ?deadline_s rng net =
  let source = source_of net source in
  let deadline_s =
    match deadline_s with Some _ as d -> d | None -> default_deadline ()
  in
  monte_carlo ?jobs ~reps rng (fun child ->
      let stop = deadline_clock deadline_s in
      let result =
        match engine with
        | Cut ->
          Async_cut.run ?protocol ?rate ?faults ?horizon ?stop child net
            ~source
        | Tick ->
          Async_tick.run ?protocol ?rate ?faults ?horizon ?stop child net
            ~source
      in
      (* Attribution: censored AND the deadline clock has expired means
         the stop brake (not the horizon) ended this replicate.  The
         counter is atomic, not shard-batched — deadline censoring is
         nondeterministic anyway, so it is excluded from the
         byte-identical-snapshot contract. *)
      (match stop with
      | Some expired when (not result.Async_result.complete) && expired () ->
        Obs.incr m_deadline_censored
      | _ -> ());
      (result.Async_result.time, result.Async_result.complete))

(* --- hardened sweep --- *)

(* One hardened replicate, shared by the fixed-count and adaptive
   sweeps so their per-replicate behaviour cannot drift apart: run the
   engine on [child], classify the result as an outcome, and return
   the raw result too (the adaptive path replays its [informed_times]
   into a control variate). *)
let replicate_outcome ?protocol ?rate ?faults ?horizon ?max_events ~engine
    ~deadline_s ~source net child =
  let stop = deadline_clock deadline_s in
  match
    match engine with
    | Cut ->
      Async_cut.run ?protocol ?rate ?faults ?horizon ?max_events ?stop child
        net ~source
    | Tick ->
      Async_tick.run ?protocol ?rate ?faults ?horizon ?max_events ?stop child
        net ~source
  with
  | result ->
    let o =
      if result.Async_result.complete then Finished result.Async_result.time
      else begin
        (match stop with
        | Some expired when expired () -> Obs.incr m_deadline_censored
        | _ -> ());
        Censored result.Async_result.time
      end
    in
    (o, Some result)
  | exception e -> (Failed (Printexc.to_string e), None)

let tally_outcome shard o =
  Obs.Shard.incr shard m_sweep_replicates;
  match o with
  | Finished t ->
    Obs.Shard.incr shard m_sweep_finished;
    Obs.Shard.observe shard h_spread_time t
  | Censored _ -> Obs.Shard.incr shard m_sweep_censored
  | Failed _ -> Obs.Shard.incr shard m_sweep_failed

let async_spread_sweep ?jobs ?(reps = 30) ?horizon ?(engine = Cut) ?protocol
    ?rate ?faults ?source ?max_events ?checkpoint ?deadline_s rng net =
  if reps < 1 then invalid_arg "Run: need at least one repetition";
  let source = source_of net source in
  let deadline_s =
    match deadline_s with Some _ as d -> d | None -> default_deadline ()
  in
  let base = Rng.bits64 rng in
  let children = Array.init reps (Rng.derive base) in
  let seeds = Array.map Checkpoint.fingerprint children in
  let outcomes : outcome option array = Array.make reps None in
  (* Resume: replicate outcomes are keyed by the child RNG fingerprint
     — a pure function of (sweep seed, replicate index) — so the
     checkpoint records completed replicate {e indices}, not a
     sequential cursor: cached outcomes line up whatever [reps] or
     [jobs] the interrupted sweep used, and whichever scattered subset
     of replicates it had decided. *)
  (match checkpoint with
  | Some path ->
    let cached = Checkpoint.load path in
    Array.iteri
      (fun i seed ->
        match Hashtbl.find_opt cached seed with
        | Some o ->
          outcomes.(i) <- Some o;
          Obs.incr m_checkpoint_hits
        | None -> ())
      seeds
  | None -> ());
  let save () =
    match checkpoint with
    | Some path ->
      Checkpoint.save path ~seeds ~outcomes;
      Obs.incr m_checkpoint_writes
    | None -> ()
  in
  let jobs = Pool.resolve ?jobs reps in
  let shards = Array.init jobs (fun _ -> Obs.Shard.create ()) in
  (* Exception isolation: a raising replicate becomes a [Failed]
     outcome; the sweep itself never raises because of one. *)
  let one ~domain r =
    if Option.is_none outcomes.(r) then begin
      let shard = shards.(domain) in
      let o, _ =
        replicate_outcome ?protocol ?rate ?faults ?horizon ?max_events ~engine
          ~deadline_s ~source net children.(r)
      in
      tally_outcome shard o;
      outcomes.(r) <- Some o;
      (* Cheap incremental checkpointing (sequential mode only, where
         the decided set is a clean prefix of the chunk order) keeps
         the file current so an interrupted sweep loses at most the
         replicate in flight; parallel sweeps persist on the way out. *)
      if jobs = 1 && Option.is_some checkpoint && (r + 1) mod 32 = 0 then
        save ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* All domains have joined (or [Pool.run] never started): merge
         the shards before the final save so the persisted manifest
         counters match the outcomes, then checkpoint — including on
         the exception path, so even a fatally dying sweep keeps its
         decided replicates. *)
      Array.iter Obs.Shard.merge shards;
      save ())
    (fun () -> ignore (Pool.run ~jobs reps one));
  {
    outcomes =
      Array.map
        (function Some o -> o | None -> Failed "replicate never ran")
        outcomes;
    seeds;
  }

(* --- adaptive sequential stopping --- *)

(* Process-wide adaptive default, installed by the campaign/experiment
   CLI ([--adaptive-rel-width]) so that replicate loops buried inside
   experiment code pick up sequential stopping without any plumbing —
   the same pattern as [deadline_override] above.  [None] (the
   default) keeps every existing path byte-identical. *)
let adaptive_override : Adaptive.config option Atomic.t = Atomic.make None
let set_default_adaptive v = Atomic.set adaptive_override v
let default_adaptive () = Atomic.get adaptive_override

let rao_blackwell_time ?(protocol = Protocol.Push_pull) ?(rate = 1.) graph
    ~informed_times =
  let n = Graph.n graph in
  if Array.length informed_times <> n then
    invalid_arg "Run.rao_blackwell_time: informed_times length mismatch";
  if n <= 1 then 0.
  else if not (Array.for_all Float.is_finite informed_times) then Float.nan
  else begin
    (* Replay the informing order.  Ties (probability zero in
       continuous time, except the source at 0) break by node index so
       the replay is a pure function of its inputs. *)
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = Float.compare informed_times.(a) informed_times.(b) in
        if c <> 0 then c else compare a b)
      order;
    let informed = Array.make n false in
    let w = Array.make n 0. in
    let total = ref 0. in
    let inform u =
      informed.(u) <- true;
      total := !total -. w.(u);
      w.(u) <- 0.;
      let du = float_of_int (Graph.unsafe_degree graph u) in
      Graph.iter_neighbors
        (fun v ->
          if not informed.(v) then begin
            let dv = float_of_int (Graph.unsafe_degree graph v) in
            let dw =
              Async_cut.pair_rate protocol ~du ~dv ~ru:1. ~rv:1. *. rate
            in
            w.(v) <- w.(v) +. dw;
            total := !total +. dw
          end)
        graph u
    in
    inform order.(0);
    let sum = ref 0. in
    let ok = ref true in
    for i = 1 to n - 1 do
      (* Expected wait for the [i]-th informing event given the current
         informed set: 1/R(S).  A zero rate means the trajectory is
         impossible on this graph (the control graph does not match the
         simulated network) — poison the value rather than divide. *)
      if !total > 0. && w.(order.(i)) > 0. then
        sum := !sum +. (1. /. !total)
      else ok := false;
      inform order.(i)
    done;
    if !ok then !sum else Float.nan
  end

type adaptive = {
  sweep : sweep;
  consumed : int;
  used : int;
  mean : float;
  sd : float;
  half_width : float;
  target_width : float;
  level : float;
  reason : Adaptive.reason;
  batches : int;
  max_reps : int;
  control : Adaptive.cv option;
}

let async_spread_sweep_adaptive ?jobs ?horizon ?(engine = Cut) ?protocol ?rate
    ?faults ?source ?max_events ?checkpoint ?deadline_s ?control ~config rng
    net =
  (match (control, faults) with
  | Some _, Some _ ->
    invalid_arg
      "Run.async_spread_sweep_adaptive: control variates require a fault-free \
       sweep (faults break the closed-form rates)"
  | _ -> ());
  (match (control, checkpoint) with
  | Some _, Some _ ->
    invalid_arg
      "Run.async_spread_sweep_adaptive: control variates cannot resume from \
       a checkpoint (cached outcomes carry no trajectory to replay)"
  | _ -> ());
  (match control with
  | Some g when Graph.n g <> net.Dynet.n ->
    invalid_arg
      "Run.async_spread_sweep_adaptive: control graph order differs from the \
       network"
  | _ -> ());
  let source = source_of net source in
  let deadline_s =
    match deadline_s with Some _ as d -> d | None -> default_deadline ()
  in
  let max_reps = config.Adaptive.max_reps in
  (* Exactly the fixed sweep's seeding: one parent draw, index-derived
     children — so the replicate streams (hence outcomes, seeds and
     checkpoint keys) of an adaptive run are the literal prefix of a
     fixed-count run seeded identically, for any job count. *)
  let base = Rng.bits64 rng in
  let children = Array.init max_reps (Rng.derive base) in
  let seeds = Array.map Checkpoint.fingerprint children in
  let outcomes : outcome option array = Array.make max_reps None in
  let controls = Array.make max_reps Float.nan in
  (match checkpoint with
  | Some path ->
    let cached = Checkpoint.load path in
    Array.iteri
      (fun i seed ->
        match Hashtbl.find_opt cached seed with
        | Some o ->
          outcomes.(i) <- Some o;
          Obs.incr m_checkpoint_hits
        | None -> ())
      seeds
  | None -> ());
  let save () =
    match checkpoint with
    | Some path ->
      Checkpoint.save path ~seeds ~outcomes;
      Obs.incr m_checkpoint_writes
    | None -> ()
  in
  let jobs = Pool.resolve ?jobs max_reps in
  let shards = Array.init jobs (fun _ -> Obs.Shard.create ()) in
  let one ~domain r =
    if Option.is_none outcomes.(r) then begin
      let shard = shards.(domain) in
      let o, result =
        replicate_outcome ?protocol ?rate ?faults ?horizon ?max_events ~engine
          ~deadline_s ~source net children.(r)
      in
      (match (control, o, result) with
      | Some g, Finished t, Some res ->
        (* Martingale residual: observed time minus its conditional
           expectation given the informing order — exactly zero-mean on
           a static graph, whatever the protocol or rate. *)
        controls.(r) <-
          t
          -. rao_blackwell_time ?protocol ?rate g
               ~informed_times:res.Async_result.informed_times
      | _ -> ());
      tally_outcome shard o;
      outcomes.(r) <- Some o;
      if jobs = 1 && Option.is_some checkpoint && (r + 1) mod 32 = 0 then
        save ()
    end
  in
  let consumed = ref 0 in
  let batches = ref 0 in
  let stopped = ref None in
  (* Prefix statistic, recomputed in index order at every chunk
     boundary: a pure function of outcomes[0..consumed), themselves
     index-keyed — so the stopping decision is independent of [jobs]
     and of domain scheduling. *)
  let prefix_stats () =
    let ys = ref [] and cs = ref [] in
    for i = !consumed - 1 downto 0 do
      match outcomes.(i) with
      | Some (Finished t) ->
        ys := t :: !ys;
        cs := controls.(i) :: !cs
      | _ -> ()
    done;
    let values = Array.of_list !ys in
    let used = Array.length values in
    match control with
    | Some _ when used > 0 && List.for_all Float.is_finite !cs ->
      let cv =
        Adaptive.control_variate ~values ~controls:(Array.of_list !cs) ()
      in
      (used, cv.Adaptive.mean, cv.Adaptive.sd, Some cv)
    | _ ->
      let s = Rumor_stats.Stream.create () in
      Array.iter (Rumor_stats.Stream.add s) values;
      (used, Rumor_stats.Stream.mean s, Rumor_stats.Stream.stddev s, None)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Obs.Shard.merge shards;
      save ())
    (fun () ->
      while Option.is_none !stopped do
        let lo = !consumed in
        let hi = min max_reps (lo + config.Adaptive.chunk) in
        ignore (Pool.run ~jobs (hi - lo) (fun ~domain i -> one ~domain (lo + i)));
        consumed := hi;
        incr batches;
        let used, mean, sd, _ = prefix_stats () in
        match Adaptive.decide config ~consumed:hi ~used ~mean ~sd with
        | Adaptive.Continue -> ()
        | Adaptive.Stop reason -> stopped := Some reason
      done);
  let used, mean, sd, cv = prefix_stats () in
  let reason = Option.get !stopped in
  Obs.incr m_adaptive_sweeps;
  Obs.add m_adaptive_consumed !consumed;
  Obs.add m_adaptive_saved (max_reps - !consumed);
  (match reason with
  | Adaptive.Converged -> Obs.incr m_adaptive_converged
  | Adaptive.Budget -> Obs.incr m_adaptive_budget);
  (match cv with
  | Some c -> Obs.set g_adaptive_vr c.Adaptive.variance_ratio
  | None -> ());
  {
    sweep =
      {
        outcomes =
          Array.init !consumed (fun i ->
              match outcomes.(i) with
              | Some o -> o
              | None -> Failed "replicate never ran");
        seeds = Array.sub seeds 0 !consumed;
      };
    consumed = !consumed;
    used;
    mean;
    sd;
    half_width = Adaptive.half_width ~level:config.Adaptive.level ~count:used ~sd;
    target_width = Adaptive.target config ~mean;
    level = config.Adaptive.level;
    reason;
    batches = !batches;
    max_reps;
    control = cv;
  }

let sweep_counts s =
  Array.fold_left
    (fun (f, c, x) -> function
      | Finished _ -> (f + 1, c, x)
      | Censored _ -> (f, c + 1, x)
      | Failed _ -> (f, c, x + 1))
    (0, 0, 0) s.outcomes

let usable_times s =
  Array.of_seq
    (Seq.filter_map
       (function Finished t -> Some t | Censored _ | Failed _ -> None)
       (Array.to_seq s.outcomes))

let quantiles_of_sweep s points =
  let times = usable_times s in
  if Array.length times = 0 then [||]
  else Array.of_list (Rumor_stats.Quantile.quantiles times points)

let first_failure s =
  Array.fold_left
    (fun acc o ->
      match (acc, o) with None, Failed m -> Some m | _ -> acc)
    None s.outcomes

let mc_of_sweep s =
  let times =
    Array.of_seq
      (Seq.filter_map
         (function Finished t | Censored t -> Some t | Failed _ -> None)
         (Array.to_seq s.outcomes))
  in
  let completed, _, _ = sweep_counts s in
  { times; completed; reps = Array.length times }

let sync_spread_rounds ?jobs ?(reps = 30) ?max_rounds ?protocol ?faults ?source
    rng net =
  let source = source_of net source in
  monte_carlo ?jobs ~reps rng (fun child ->
      let result = Sync.run ?protocol ?max_rounds ?faults child net ~source in
      (float_of_int result.Sync.rounds, result.Sync.complete))

let flooding_rounds ?jobs ?(reps = 30) ?max_rounds ?source rng net =
  let source = source_of net source in
  monte_carlo ?jobs ~reps rng (fun child ->
      let result = Flooding.run ?max_rounds child net ~source in
      (float_of_int result.Flooding.rounds, result.Flooding.complete))
