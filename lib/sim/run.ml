open Rumor_rng
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics

(* Telemetry (lib/obs): replicate accounting for the Monte-Carlo
   runners and a spread-time histogram over completed replicates.
   Worker domains record through atomic cells, so the parallel runners
   need no extra synchronisation. *)
let m_replicates = Obs.counter "run.replicates"
let m_sweep_replicates = Obs.counter "run.sweep.replicates"
let m_sweep_finished = Obs.counter "run.sweep.finished"
let m_sweep_censored = Obs.counter "run.sweep.censored"
let m_sweep_failed = Obs.counter "run.sweep.failed"
let m_checkpoint_hits = Obs.counter "run.sweep.checkpoint_hits"
let m_checkpoint_writes = Obs.counter "run.sweep.checkpoint_writes"
let h_spread_time = Obs.histogram "run.spread_time"

type engine = Cut | Tick

type mc = {
  times : float array;
  completed : int;
  reps : int;
}

type outcome = Checkpoint.outcome =
  | Finished of float
  | Censored of float
  | Failed of string

type sweep = {
  outcomes : outcome array;
  seeds : int64 array;
}

let source_of (net : Dynet.t) explicit =
  match (explicit, net.source_hint) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> 0

let monte_carlo ~reps rng one =
  let times = Array.make reps 0. in
  let completed = ref 0 in
  for r = 0 to reps - 1 do
    let child = Rng.split rng in
    let time, ok = one child in
    times.(r) <- time;
    if ok then begin
      incr completed;
      Obs.observe h_spread_time time
    end
  done;
  Obs.add m_replicates reps;
  { times; completed = !completed; reps }

let async_spread_times ?(reps = 30) ?horizon ?(engine = Cut) ?protocol ?rate
    ?faults ?source rng net =
  let source = source_of net source in
  monte_carlo ~reps rng (fun child ->
      let result =
        match engine with
        | Cut -> Async_cut.run ?protocol ?rate ?faults ?horizon child net ~source
        | Tick -> Async_tick.run ?protocol ?rate ?faults ?horizon child net ~source
      in
      (result.Async_result.time, result.Async_result.complete))

(* Domain-parallel variant: the child RNGs are pre-split sequentially,
   so the sample is bit-identical to the sequential runner's regardless
   of the domain count or scheduling — repetitions share no mutable
   state (each spawns its own Dynet instance). *)
let async_spread_times_parallel ?(domains = 4) ?(reps = 30) ?horizon
    ?(engine = Cut) ?protocol ?rate ?faults ?source rng net =
  if domains < 1 then invalid_arg "Run: need at least one domain";
  let source = source_of net source in
  let children = Array.init reps (fun _ -> Rng.split rng) in
  let times = Array.make reps 0. in
  let ok = Array.make reps false in
  let one r =
    let result =
      match engine with
      | Cut ->
        Async_cut.run ?protocol ?rate ?faults ?horizon children.(r) net ~source
      | Tick ->
        Async_tick.run ?protocol ?rate ?faults ?horizon children.(r) net ~source
    in
    times.(r) <- result.Async_result.time;
    ok.(r) <- result.Async_result.complete;
    if result.Async_result.complete then
      Obs.observe h_spread_time result.Async_result.time
  in
  let domains = min domains reps in
  if domains <= 1 then
    for r = 0 to reps - 1 do
      one r
    done
  else begin
    (* Static block partition: domain d handles indices congruent to d. *)
    let workers =
      Array.init (domains - 1) (fun d ->
          Domain.spawn (fun () ->
              let r = ref (d + 1) in
              while !r < reps do
                one !r;
                r := !r + domains
              done))
    in
    (* Every spawned domain is joined even when a main-domain replicate
       raises; a worker's own exception is re-raised only after every
       domain is accounted for, so no domain is ever leaked. *)
    let worker_exn = ref None in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun d ->
            match Domain.join d with
            | () -> ()
            | exception e ->
              if Option.is_none !worker_exn then worker_exn := Some e)
          workers)
      (fun () ->
        let r = ref 0 in
        while !r < reps do
          one !r;
          r := !r + domains
        done);
    match !worker_exn with Some e -> raise e | None -> ()
  end;
  {
    times;
    completed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ok;
    reps;
  }

(* --- hardened sweep --- *)

let async_spread_sweep ?(domains = 1) ?(reps = 30) ?horizon ?(engine = Cut)
    ?protocol ?rate ?faults ?source ?max_events ?checkpoint rng net =
  if domains < 1 then invalid_arg "Run: need at least one domain";
  if reps < 1 then invalid_arg "Run: need at least one repetition";
  let source = source_of net source in
  let children = Array.init reps (fun _ -> Rng.split rng) in
  let seeds = Array.map Checkpoint.fingerprint children in
  let outcomes : outcome option array = Array.make reps None in
  (* Resume: replicate outcomes are keyed by the child RNG fingerprint,
     and the split sequence is prefix-stable, so cached outcomes line
     up whatever [reps] the interrupted sweep used. *)
  (match checkpoint with
  | Some path ->
    let cached = Checkpoint.load path in
    Array.iteri
      (fun i seed ->
        match Hashtbl.find_opt cached seed with
        | Some o ->
          outcomes.(i) <- Some o;
          Obs.incr m_checkpoint_hits
        | None -> ())
      seeds
  | None -> ());
  let save () =
    match checkpoint with
    | Some path ->
      Checkpoint.save path ~seeds ~outcomes;
      Obs.incr m_checkpoint_writes
    | None -> ()
  in
  (* Exception isolation: a raising replicate becomes a [Failed]
     outcome; the sweep itself never raises because of one. *)
  let one r =
    if Option.is_none outcomes.(r) then begin
      let o =
        match
          match engine with
          | Cut ->
            Async_cut.run ?protocol ?rate ?faults ?horizon ?max_events
              children.(r) net ~source
          | Tick ->
            Async_tick.run ?protocol ?rate ?faults ?horizon ?max_events
              children.(r) net ~source
        with
        | result ->
          if result.Async_result.complete then
            Finished result.Async_result.time
          else Censored result.Async_result.time
        | exception e -> Failed (Printexc.to_string e)
      in
      Obs.incr m_sweep_replicates;
      (match o with
      | Finished t ->
        Obs.incr m_sweep_finished;
        Obs.observe h_spread_time t
      | Censored _ -> Obs.incr m_sweep_censored
      | Failed _ -> Obs.incr m_sweep_failed);
      outcomes.(r) <- Some o
    end
  in
  let domains = min domains reps in
  Fun.protect ~finally:save (fun () ->
      if domains <= 1 then
        for r = 0 to reps - 1 do
          one r;
          (* Cheap incremental checkpointing keeps the file current so
             an interrupted sweep loses at most the replicate in
             flight. *)
          if Option.is_some checkpoint && (r + 1) mod 32 = 0 then save ()
        done
      else begin
        let workers =
          Array.init (domains - 1) (fun d ->
              Domain.spawn (fun () ->
                  let r = ref (d + 1) in
                  while !r < reps do
                    one !r;
                    r := !r + domains
                  done))
        in
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun d ->
                (* [one] isolates every replicate exception, so a worker
                   can only die of something fatal; even then the sweep
                   result (partial outcomes) survives. *)
                match Domain.join d with () -> () | exception _ -> ())
              workers)
          (fun () ->
            let r = ref 0 in
            while !r < reps do
              one !r;
              r := !r + domains
            done)
      end);
  {
    outcomes =
      Array.map
        (function Some o -> o | None -> Failed "replicate never ran")
        outcomes;
    seeds;
  }

let sweep_counts s =
  Array.fold_left
    (fun (f, c, x) -> function
      | Finished _ -> (f + 1, c, x)
      | Censored _ -> (f, c + 1, x)
      | Failed _ -> (f, c, x + 1))
    (0, 0, 0) s.outcomes

let usable_times s =
  Array.of_seq
    (Seq.filter_map
       (function Finished t -> Some t | Censored _ | Failed _ -> None)
       (Array.to_seq s.outcomes))

let first_failure s =
  Array.fold_left
    (fun acc o ->
      match (acc, o) with None, Failed m -> Some m | _ -> acc)
    None s.outcomes

let mc_of_sweep s =
  let times =
    Array.of_seq
      (Seq.filter_map
         (function Finished t | Censored t -> Some t | Failed _ -> None)
         (Array.to_seq s.outcomes))
  in
  let completed, _, _ = sweep_counts s in
  { times; completed; reps = Array.length times }

let sync_spread_rounds ?(reps = 30) ?max_rounds ?protocol ?faults ?source rng
    net =
  let source = source_of net source in
  monte_carlo ~reps rng (fun child ->
      let result = Sync.run ?protocol ?max_rounds ?faults child net ~source in
      (float_of_int result.Sync.rounds, result.Sync.complete))

let flooding_rounds ?(reps = 30) ?max_rounds ?source rng net =
  let source = source_of net source in
  monte_carlo ~reps rng (fun child ->
      let result = Flooding.run ?max_rounds child net ~source in
      (float_of_int result.Flooding.rounds, result.Flooding.complete))
