open Rumor_rng
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics
module Pool = Rumor_par.Pool

(* Telemetry (lib/obs): replicate accounting for the Monte-Carlo
   runners and a spread-time histogram over completed replicates.
   Worker domains record through per-domain shards merged after the
   pool joins, so the hot path shares nothing and totals stay exact. *)
let m_replicates = Obs.counter "run.replicates"
let m_sweep_replicates = Obs.counter "run.sweep.replicates"
let m_sweep_finished = Obs.counter "run.sweep.finished"
let m_sweep_censored = Obs.counter "run.sweep.censored"
let m_sweep_failed = Obs.counter "run.sweep.failed"
let m_checkpoint_hits = Obs.counter "run.sweep.checkpoint_hits"
let m_checkpoint_writes = Obs.counter "run.sweep.checkpoint_writes"
let h_spread_time = Obs.histogram "run.spread_time"

type engine = Cut | Tick

type mc = {
  times : float array;
  completed : int;
  reps : int;
}

type outcome = Checkpoint.outcome =
  | Finished of float
  | Censored of float
  | Failed of string

type sweep = {
  outcomes : outcome array;
  seeds : int64 array;
}

let source_of (net : Dynet.t) explicit =
  match (explicit, net.source_hint) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> 0

(* Split-seed determinism: one parent draw per sweep yields [base];
   replicate [r] then runs on [Rng.derive base r], a pure function of
   (base, r).  The replicate -> stream map is therefore independent of
   the domain count and of execution order, which is what makes every
   runner below bit-identical for any [jobs] — including under fault
   plans (faults draw from the replicate's own stream) and on
   checkpoint resume (missing indices re-derive the same streams). *)
let monte_carlo ?jobs ~reps rng one =
  let base = Rng.bits64 rng in
  let times = Array.make reps 0. in
  let ok = Array.make reps false in
  let jobs = Pool.resolve ?jobs reps in
  let shards = Array.init jobs (fun _ -> Obs.Shard.create ()) in
  Fun.protect
    (* Merge on the exception path too: observations made before a
       replicate raised are kept, never dropped. *)
    ~finally:(fun () -> Array.iter Obs.Shard.merge shards)
    (fun () ->
      ignore
        (Pool.run ~jobs reps (fun ~domain r ->
             let time, completed = one (Rng.derive base r) in
             times.(r) <- time;
             ok.(r) <- completed;
             if completed then
               Obs.Shard.observe shards.(domain) h_spread_time time)));
  Obs.add m_replicates reps;
  {
    times;
    completed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ok;
    reps;
  }

let async_spread_times ?jobs ?(reps = 30) ?horizon ?(engine = Cut) ?protocol
    ?rate ?faults ?source rng net =
  let source = source_of net source in
  monte_carlo ?jobs ~reps rng (fun child ->
      let result =
        match engine with
        | Cut -> Async_cut.run ?protocol ?rate ?faults ?horizon child net ~source
        | Tick -> Async_tick.run ?protocol ?rate ?faults ?horizon child net ~source
      in
      (result.Async_result.time, result.Async_result.complete))

(* --- hardened sweep --- *)

let async_spread_sweep ?jobs ?(reps = 30) ?horizon ?(engine = Cut) ?protocol
    ?rate ?faults ?source ?max_events ?checkpoint rng net =
  if reps < 1 then invalid_arg "Run: need at least one repetition";
  let source = source_of net source in
  let base = Rng.bits64 rng in
  let children = Array.init reps (Rng.derive base) in
  let seeds = Array.map Checkpoint.fingerprint children in
  let outcomes : outcome option array = Array.make reps None in
  (* Resume: replicate outcomes are keyed by the child RNG fingerprint
     — a pure function of (sweep seed, replicate index) — so the
     checkpoint records completed replicate {e indices}, not a
     sequential cursor: cached outcomes line up whatever [reps] or
     [jobs] the interrupted sweep used, and whichever scattered subset
     of replicates it had decided. *)
  (match checkpoint with
  | Some path ->
    let cached = Checkpoint.load path in
    Array.iteri
      (fun i seed ->
        match Hashtbl.find_opt cached seed with
        | Some o ->
          outcomes.(i) <- Some o;
          Obs.incr m_checkpoint_hits
        | None -> ())
      seeds
  | None -> ());
  let save () =
    match checkpoint with
    | Some path ->
      Checkpoint.save path ~seeds ~outcomes;
      Obs.incr m_checkpoint_writes
    | None -> ()
  in
  let jobs = Pool.resolve ?jobs reps in
  let shards = Array.init jobs (fun _ -> Obs.Shard.create ()) in
  (* Exception isolation: a raising replicate becomes a [Failed]
     outcome; the sweep itself never raises because of one. *)
  let one ~domain r =
    if Option.is_none outcomes.(r) then begin
      let shard = shards.(domain) in
      let o =
        match
          match engine with
          | Cut ->
            Async_cut.run ?protocol ?rate ?faults ?horizon ?max_events
              children.(r) net ~source
          | Tick ->
            Async_tick.run ?protocol ?rate ?faults ?horizon ?max_events
              children.(r) net ~source
        with
        | result ->
          if result.Async_result.complete then
            Finished result.Async_result.time
          else Censored result.Async_result.time
        | exception e -> Failed (Printexc.to_string e)
      in
      Obs.Shard.incr shard m_sweep_replicates;
      (match o with
      | Finished t ->
        Obs.Shard.incr shard m_sweep_finished;
        Obs.Shard.observe shard h_spread_time t
      | Censored _ -> Obs.Shard.incr shard m_sweep_censored
      | Failed _ -> Obs.Shard.incr shard m_sweep_failed);
      outcomes.(r) <- Some o;
      (* Cheap incremental checkpointing (sequential mode only, where
         the decided set is a clean prefix of the chunk order) keeps
         the file current so an interrupted sweep loses at most the
         replicate in flight; parallel sweeps persist on the way out. *)
      if jobs = 1 && Option.is_some checkpoint && (r + 1) mod 32 = 0 then
        save ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* All domains have joined (or [Pool.run] never started): merge
         the shards before the final save so the persisted manifest
         counters match the outcomes, then checkpoint — including on
         the exception path, so even a fatally dying sweep keeps its
         decided replicates. *)
      Array.iter Obs.Shard.merge shards;
      save ())
    (fun () -> ignore (Pool.run ~jobs reps one));
  {
    outcomes =
      Array.map
        (function Some o -> o | None -> Failed "replicate never ran")
        outcomes;
    seeds;
  }

let sweep_counts s =
  Array.fold_left
    (fun (f, c, x) -> function
      | Finished _ -> (f + 1, c, x)
      | Censored _ -> (f, c + 1, x)
      | Failed _ -> (f, c, x + 1))
    (0, 0, 0) s.outcomes

let usable_times s =
  Array.of_seq
    (Seq.filter_map
       (function Finished t -> Some t | Censored _ | Failed _ -> None)
       (Array.to_seq s.outcomes))

let first_failure s =
  Array.fold_left
    (fun acc o ->
      match (acc, o) with None, Failed m -> Some m | _ -> acc)
    None s.outcomes

let mc_of_sweep s =
  let times =
    Array.of_seq
      (Seq.filter_map
         (function Finished t | Censored t -> Some t | Failed _ -> None)
         (Array.to_seq s.outcomes))
  in
  let completed, _, _ = sweep_counts s in
  { times; completed; reps = Array.length times }

let sync_spread_rounds ?jobs ?(reps = 30) ?max_rounds ?protocol ?faults ?source
    rng net =
  let source = source_of net source in
  monte_carlo ?jobs ~reps rng (fun child ->
      let result = Sync.run ?protocol ?max_rounds ?faults child net ~source in
      (float_of_int result.Sync.rounds, result.Sync.complete))

let flooding_rounds ?jobs ?(reps = 30) ?max_rounds ?source rng net =
  let source = source_of net source in
  monte_carlo ?jobs ~reps rng (fun child ->
      let result = Flooding.run ?max_rounds child net ~source in
      (float_of_int result.Flooding.rounds, result.Flooding.complete))
