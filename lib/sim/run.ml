open Rumor_rng
open Rumor_dynamic

type engine = Cut | Tick

type mc = {
  times : float array;
  completed : int;
  reps : int;
}

let source_of (net : Dynet.t) explicit =
  match (explicit, net.source_hint) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> 0

let monte_carlo ~reps rng one =
  let times = Array.make reps 0. in
  let completed = ref 0 in
  for r = 0 to reps - 1 do
    let child = Rng.split rng in
    let time, ok = one child in
    times.(r) <- time;
    if ok then incr completed
  done;
  { times; completed = !completed; reps }

let async_spread_times ?(reps = 30) ?horizon ?(engine = Cut) ?protocol ?rate
    ?source rng net =
  let source = source_of net source in
  monte_carlo ~reps rng (fun child ->
      let result =
        match engine with
        | Cut -> Async_cut.run ?protocol ?rate ?horizon child net ~source
        | Tick -> Async_tick.run ?protocol ?rate ?horizon child net ~source
      in
      (result.Async_result.time, result.Async_result.complete))

(* Domain-parallel variant: the child RNGs are pre-split sequentially,
   so the sample is bit-identical to the sequential runner's regardless
   of the domain count or scheduling — repetitions share no mutable
   state (each spawns its own Dynet instance). *)
let async_spread_times_parallel ?(domains = 4) ?(reps = 30) ?horizon
    ?(engine = Cut) ?protocol ?rate ?source rng net =
  if domains < 1 then invalid_arg "Run: need at least one domain";
  let source = source_of net source in
  let children = Array.init reps (fun _ -> Rng.split rng) in
  let times = Array.make reps 0. in
  let ok = Array.make reps false in
  let one r =
    let result =
      match engine with
      | Cut -> Async_cut.run ?protocol ?rate ?horizon children.(r) net ~source
      | Tick -> Async_tick.run ?protocol ?rate ?horizon children.(r) net ~source
    in
    times.(r) <- result.Async_result.time;
    ok.(r) <- result.Async_result.complete
  in
  let domains = min domains reps in
  if domains <= 1 then
    for r = 0 to reps - 1 do
      one r
    done
  else begin
    (* Static block partition: domain d handles indices congruent to d. *)
    let workers =
      Array.init (domains - 1) (fun d ->
          Domain.spawn (fun () ->
              let r = ref (d + 1) in
              while !r < reps do
                one !r;
                r := !r + domains
              done))
    in
    let r = ref 0 in
    while !r < reps do
      one !r;
      r := !r + domains
    done;
    Array.iter Domain.join workers
  end;
  {
    times;
    completed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ok;
    reps;
  }

let sync_spread_rounds ?(reps = 30) ?max_rounds ?protocol ?source rng net =
  let source = source_of net source in
  monte_carlo ~reps rng (fun child ->
      let result = Sync.run ?protocol ?max_rounds child net ~source in
      (float_of_int result.Sync.rounds, result.Sync.complete))

let flooding_rounds ?(reps = 30) ?max_rounds ?source rng net =
  let source = source_of net source in
  monte_carlo ~reps rng (fun child ->
      let result = Flooding.run ?max_rounds child net ~source in
      (float_of_int result.Flooding.rounds, result.Flooding.complete))
