open Rumor_util
open Rumor_graph
open Rumor_dynamic

type result = {
  rounds : int;
  complete : bool;
  informed : Bitset.t;
}

let run ?(max_rounds = 1_000_000) rng (net : Dynet.t) ~source =
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Flooding.run: source %d out of range" source);
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let rounds = ref 0 in
  let complete = ref (Bitset.is_full informed) in
  while (not !complete) && !rounds < max_rounds do
    let graph = (Dynet.next instance ~informed).Dynet.graph in
    let snapshot = Bitset.copy informed in
    Bitset.iter
      (fun u ->
        Graph.iter_neighbors (fun v -> ignore (Bitset.add informed v)) graph u)
      snapshot;
    incr rounds;
    if Bitset.is_full informed then complete := true
  done;
  { rounds = !rounds; complete = !complete; informed }
