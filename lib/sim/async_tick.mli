(** Literal per-tick simulator of the asynchronous algorithm
    (Definition 1).

    Every clock tick is simulated: the superposition of [n] rate-[r]
    exponential clocks is a Poisson process of rate [n * r] whose
    arrivals are handed to uniformly random nodes; the ticking node
    calls a uniformly random neighbour in the current graph and the
    protocol exchange is applied.

    Slower than {!Async_cut} (O(n * T) ticks instead of O(n) informing
    events) but supports protocol variants — push-only, pull-only, and
    the rate-2 push of the paper's 2-push coupling (Lemma 4.2) — and
    serves as the ground truth the fast engine is validated against. *)

open Rumor_rng
open Rumor_dynamic
open Rumor_faults

val run :
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?horizon:float ->
  ?max_events:int ->
  ?stop:(unit -> bool) ->
  ?record_trace:bool ->
  Rng.t ->
  Dynet.t ->
  source:int ->
  Async_result.t
(** [run rng net ~source] with clock rate [rate] (default 1.0) per
    node and protocol (default push–pull) until complete or [horizon]
    (default 1e5).

    [faults] (default {!Fault_plan.none}) injects per-message loss (one
    Bernoulli trial per rumor-carrying message — push and pull trials
    of one contact are independent), crash/recovery churn (a crashed
    node's ticks are ignored and contacts with it do nothing),
    heterogeneous clock rates (the ticking node becomes the rates'
    categorical sample) and partition windows.  With the trivial plan
    the engine consumes exactly the pre-fault random-draw sequence.

    [max_events] caps the number of clock ticks, degrading to a
    censored result.  [stop] is a cooperative brake polled once per
    tick (see {!Async_cut.run}): the first [true] censors the run
    like an exhausted budget.

    @raise Invalid_argument if [source] is out of range, [rate <= 0]
    or [max_events < 1]. *)
