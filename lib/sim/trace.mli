(** Analysis of informed-count trajectories.

    The engines (with [~record_trace:true]) emit [(time, count)] pairs;
    this module extracts the quantities the paper's proof of
    Theorem 1.1 reasons about: the durations of the doubling phases of
    [min(I_tau, U_tau)] (Lemma 3.1 bounds each phase, and there are
    [O(log n)] of them), and times to reach fixed informed
    fractions. *)

type t = (float * int) array
(** A trajectory as produced by the engines: strictly increasing in
    count, non-decreasing in time, starting at the source's
    [(0., 1)]. *)

val validate : t -> n:int -> unit
(** @raise Invalid_argument if the trajectory is empty, not monotone,
    or exceeds [n]. *)

val time_to_count : t -> int -> float option
(** First time at which the informed count reaches the given value
    ([None] if the run ended earlier). *)

val per_step_progress : t -> int array
(** Informed-count deltas bucketed by dynamic step: entry [s] is how
    many nodes were informed during [[s, s+1)).  Length is the number
    of steps the trajectory spans; the initial point contributes
    nothing (the source is a baseline, not progress).  Summing a
    prefix and overlaying the per-step [Phi rho] accounting of
    Theorem 1.1 reproduces the paper's [sum Phi rho >= C log n]
    stopping rule on measured data (exported through the E1 JSONL
    rows when an observability sink is configured). *)

val time_to_fraction : t -> n:int -> float -> float option
(** [time_to_fraction tr ~n frac] is the first time the informed count
    reaches [ceil(frac * n)].
    @raise Invalid_argument if [frac] is outside [(0, 1]]. *)

val doubling_phases : t -> n:int -> float list
(** Durations of the Lemma 3.1 phases: starting from [I = 1], each
    phase ends when [min(I, U)] has grown (first phase: informed
    count multiplied by 3/2; second half: uninformed count halved),
    mirroring the proof's two-phase schedule.  Returns the list of
    phase durations in order; their number is [O(log n)] on a complete
    run. *)

val phase_count_bound : n:int -> int
(** The proof's phase budget [log_{3/2}(n/2) + log_2 n + 2], the
    a-priori ceiling on [List.length (doubling_phases tr ~n)]. *)
