(** Rumor-exchange protocols.

    On a contact the {e caller} [u] has picked the {e callee} [v]:
    push sends the rumor [u -> v], pull asks for it [v -> u], push–pull
    does both (Definition 1 — the algorithm analysed throughout the
    paper is push–pull; push-only appears in the 2-push coupling of
    Lemma 4.2). *)

type t = Push | Pull | Push_pull

val caller_informs_callee : t -> bool
(** Does this protocol transmit from an informed caller to the
    callee? *)

val callee_informs_caller : t -> bool

val apply :
  t -> caller_informed:bool -> callee_informed:bool -> bool * bool
(** [(new_caller_informed, new_callee_informed)] after the contact. *)

val to_string : t -> string

val all : t list
