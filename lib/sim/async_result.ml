open Rumor_util

type t = {
  time : float;
  complete : bool;
  informed : Bitset.t;
  events : int;
  steps : int;
  trace : (float * int) array;
  informed_times : float array;
}

let spread_time_exn r =
  if r.complete then r.time
  else failwith "Async_result.spread_time_exn: run hit the horizon"
