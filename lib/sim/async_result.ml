open Rumor_util

exception Horizon_exceeded of { horizon : float; informed : int }

let () =
  Printexc.register_printer (function
    | Horizon_exceeded { horizon; informed } ->
      Some
        (Printf.sprintf
           "Async_result.Horizon_exceeded(horizon %g, %d informed)" horizon
           informed)
    | _ -> None)

type t = {
  time : float;
  complete : bool;
  informed : Bitset.t;
  events : int;
  steps : int;
  lost : int;
  trace : (float * int) array;
  informed_times : float array;
}

let spread_time_exn r =
  if r.complete then r.time
  else
    raise
      (Horizon_exceeded
         { horizon = r.time; informed = Bitset.cardinal r.informed })
