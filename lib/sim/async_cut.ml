open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

(* Cut rate carried by an uninformed node v, per protocol:
   push-pull:  sum over informed neighbours u of (1/d_u + 1/d_v)
   push:       sum over informed neighbours u of  1/d_u
   pull:       sum over informed neighbours u of  1/d_v
   The per-node clock rate multiplies uniformly. *)
let pair_rate protocol ~du ~dv =
  match protocol with
  | Protocol.Push_pull -> (1. /. du) +. (1. /. dv)
  | Protocol.Push -> 1. /. du
  | Protocol.Pull -> 1. /. dv

type event =
  | Informed of int * float
  | Step_boundary of int * bool
  | Complete of float

type engine = {
  rng : Rng.t;
  instance : Dynet.instance;
  protocol : Protocol.t;
  rate : float;
  informed : Bitset.t;
  fenwick : Fenwick.t;
  scratch : float array;
  times : float array;
  mutable graph : Graph.t;
  mutable tau : float;
  mutable step : int;
}

let rebuild_weights e =
  let graph = e.graph and informed = e.informed in
  let n = Graph.n graph in
  for v = 0 to n - 1 do
    e.scratch.(v) <- 0.
  done;
  for v = 0 to n - 1 do
    if not (Bitset.mem informed v) then begin
      let neigh = Graph.neighbors graph v in
      let dv = float_of_int (Array.length neigh) in
      let w = ref 0. in
      Array.iter
        (fun u ->
          if Bitset.mem informed u then
            w :=
              !w
              +. pair_rate e.protocol
                   ~du:(float_of_int (Graph.degree graph u))
                   ~dv)
        neigh;
      e.scratch.(v) <- !w *. e.rate
    end
  done;
  Fenwick.fill_from e.fenwick e.scratch

let inform_node e v =
  ignore (Bitset.add e.informed v);
  e.times.(v) <- e.tau;
  Fenwick.set e.fenwick v 0.;
  let graph = e.graph in
  let dv = float_of_int (Graph.degree graph v) in
  Array.iter
    (fun x ->
      if not (Bitset.mem e.informed x) then
        Fenwick.add e.fenwick x
          (e.rate
          *. pair_rate e.protocol ~du:dv
               ~dv:(float_of_int (Graph.degree graph x))))
    (Graph.neighbors graph v)

let create ?(protocol = Protocol.Push_pull) ?(rate = 1.0) rng (net : Dynet.t)
    ~source =
  if rate <= 0. then invalid_arg "Async_cut.run: rate must be positive";
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Async_cut.run: source %d out of range" source);
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let times = Array.make n Float.nan in
  times.(source) <- 0.;
  let info = Dynet.next instance ~informed in
  let e =
    {
      rng;
      instance;
      protocol;
      rate;
      informed;
      fenwick = Fenwick.create n;
      scratch = Array.make n 0.;
      times;
      graph = info.Dynet.graph;
      tau = 0.;
      step = 0;
    }
  in
  rebuild_weights e;
  e

let time e = e.tau

let informed e = e.informed

let informed_count e = Bitset.cardinal e.informed

let informed_times e = e.times

let is_complete e = Bitset.is_full e.informed

let advance_step e =
  e.tau <- float_of_int (e.step + 1);
  e.step <- e.step + 1;
  let next_info = Dynet.next e.instance ~informed:e.informed in
  e.graph <- next_info.Dynet.graph;
  if next_info.Dynet.changed then rebuild_weights e;
  Step_boundary (e.step, next_info.Dynet.changed)

let rec next_event e =
  if Bitset.is_full e.informed then Complete e.tau
  else begin
    let boundary = float_of_int (e.step + 1) in
    let lambda = Fenwick.total e.fenwick in
    if lambda <= 1e-300 then advance_step e
    else begin
      let delta = -.log (Rng.float_pos e.rng) /. lambda in
      if e.tau +. delta >= boundary then advance_step e
      else begin
        e.tau <- e.tau +. delta;
        let v = Fenwick.find e.fenwick (Rng.float e.rng *. lambda) in
        (* Float cancellation can leave a stale zero-weight slot at a
           sampling boundary; such a draw has probability ~0 and is
           retried. *)
        if Bitset.mem e.informed v then next_event e
        else begin
          inform_node e v;
          Informed (v, e.tau)
        end
      end
    end
  end

let run ?protocol ?rate ?(horizon = 1e7) ?(record_trace = false) rng
    (net : Dynet.t) ~source =
  let e = create ?protocol ?rate rng net ~source in
  let trace = ref [] in
  let record tau =
    if record_trace then trace := (tau, Bitset.cardinal e.informed) :: !trace
  in
  record 0.;
  let events = ref 0 in
  let finished = ref false in
  let out_of_time = ref false in
  while (not !finished) && not !out_of_time do
    match next_event e with
    | Complete _ -> finished := true
    | Step_boundary (_, _) -> if e.tau >= horizon then out_of_time := true
    | Informed (_, tau) ->
      incr events;
      record tau
  done;
  {
    Async_result.time = e.tau;
    complete = !finished;
    informed = e.informed;
    events = !events;
    steps = e.step + 1;
    trace = Array.of_list (List.rev !trace);
    informed_times = e.times;
  }
