open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics

(* Telemetry (lib/obs): per-run tallies live in plain engine fields on
   the hot path and are flushed into the process-wide registry once
   per [run] — a disabled registry costs one atomic-bool load per
   run. *)
let m_runs = Obs.counter "async_cut.runs"
let m_completed = Obs.counter "async_cut.completed"
let m_censored = Obs.counter "async_cut.censored"
let m_events = Obs.counter "async_cut.events"
let m_lost = Obs.counter "async_cut.lost"
let m_wasted_draws = Obs.counter "async_cut.wasted_draws"
let m_steps = Obs.counter "async_cut.steps"
let m_rebuilds = Obs.counter "async_cut.weight_rebuilds"
let m_fenwick_ops = Obs.counter "async_cut.fenwick_ops"

(* Cut rate carried by an uninformed node v, per protocol:
   push-pull:  sum over informed neighbours u of (r_u/d_u + r_v/d_v)
   push:       sum over informed neighbours u of  r_u/d_u
   pull:       sum over informed neighbours u of  r_v/d_v
   where r_u is the node's fault-plan clock multiplier (1 without
   faults).  The global clock rate multiplies uniformly.  Crashed and
   partition-separated pairs contribute nothing; message loss is
   injected downstream by rejection (see next_event), which keeps the
   cut weights loss-free — the thinning identity makes both views
   distribution-identical, and rejection exercises a genuinely
   different code path than the rate-rescale it must agree with. *)
let pair_rate protocol ~du ~dv ~ru ~rv =
  match protocol with
  | Protocol.Push_pull -> (ru /. du) +. (rv /. dv)
  | Protocol.Push -> ru /. du
  | Protocol.Pull -> rv /. dv

type event =
  | Informed of int * float
  | Step_boundary of int * bool
  | Complete of float

type engine = {
  rng : Rng.t;
  instance : Dynet.instance;
  protocol : Protocol.t;
  rate : float;
  faults : Fault_plan.state;
  informed : Bitset.t;
  fenwick : Fenwick.t;
  scratch : float array;
  times : float array;
  mutable graph : Graph.t;
  mutable tau : float;
  mutable step : int;
  mutable lost : int;
  (* telemetry tallies, flushed to Rumor_obs.Metrics by [run] *)
  mutable rebuilds : int;
  mutable fenwick_ops : int;
  mutable wasted_draws : int;
}

let rebuild_weights e =
  let graph = e.graph and informed = e.informed in
  let n = Graph.n graph in
  e.rebuilds <- e.rebuilds + 1;
  e.fenwick_ops <- e.fenwick_ops + n;
  for v = 0 to n - 1 do
    e.scratch.(v) <- 0.
  done;
  for v = 0 to n - 1 do
    if (not (Bitset.mem informed v)) && Fault_plan.alive e.faults v then begin
      let neigh = Graph.neighbors graph v in
      let dv = float_of_int (Array.length neigh) in
      let rv = Fault_plan.rate e.faults v in
      let w = ref 0. in
      Array.iter
        (fun u ->
          if Bitset.mem informed u && Fault_plan.allows e.faults u v then
            w :=
              !w
              +. pair_rate e.protocol
                   ~du:(float_of_int (Graph.degree graph u))
                   ~ru:(Fault_plan.rate e.faults u)
                   ~dv ~rv)
        neigh;
      e.scratch.(v) <- !w *. e.rate
    end
  done;
  Fenwick.fill_from e.fenwick e.scratch

let inform_node e v =
  ignore (Bitset.add e.informed v);
  e.times.(v) <- e.tau;
  Fenwick.set e.fenwick v 0.;
  e.fenwick_ops <- e.fenwick_ops + 1;
  let graph = e.graph in
  let dv = float_of_int (Graph.degree graph v) in
  let rv = Fault_plan.rate e.faults v in
  Array.iter
    (fun x ->
      if (not (Bitset.mem e.informed x)) && Fault_plan.allows e.faults v x then begin
        e.fenwick_ops <- e.fenwick_ops + 1;
        Fenwick.add e.fenwick x
          (e.rate
          *. pair_rate e.protocol ~du:dv ~ru:rv
               ~dv:(float_of_int (Graph.degree graph x))
               ~rv:(Fault_plan.rate e.faults x))
      end)
    (Graph.neighbors graph v)

let create ?(protocol = Protocol.Push_pull) ?(rate = 1.0)
    ?(faults = Fault_plan.none) rng (net : Dynet.t) ~source =
  if rate <= 0. then invalid_arg "Async_cut.run: rate must be positive";
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Async_cut.run: source %d out of range" source);
  let faults = Fault_plan.init faults ~n in
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let times = Array.make n Float.nan in
  times.(source) <- 0.;
  let info = Dynet.next instance ~informed in
  let e =
    {
      rng;
      instance;
      protocol;
      rate;
      faults;
      informed;
      fenwick = Fenwick.create n;
      scratch = Array.make n 0.;
      times;
      graph = info.Dynet.graph;
      tau = 0.;
      step = 0;
      lost = 0;
      rebuilds = 0;
      fenwick_ops = 0;
      wasted_draws = 0;
    }
  in
  rebuild_weights e;
  e

let time e = e.tau

let informed e = e.informed

let informed_count e = Bitset.cardinal e.informed

let informed_times e = e.times

let is_complete e = Bitset.is_full e.informed

let lost_count e = e.lost

let advance_step e =
  e.tau <- float_of_int (e.step + 1);
  e.step <- e.step + 1;
  let next_info = Dynet.next e.instance ~informed:e.informed in
  e.graph <- next_info.Dynet.graph;
  let faults_changed = Fault_plan.advance e.faults e.rng ~step:e.step in
  if next_info.Dynet.changed || faults_changed then rebuild_weights e;
  Step_boundary (e.step, next_info.Dynet.changed)

let rec next_event e =
  if Bitset.is_full e.informed then Complete e.tau
  else begin
    let boundary = float_of_int (e.step + 1) in
    let lambda = Fenwick.total e.fenwick in
    if lambda <= 1e-300 then advance_step e
    else begin
      let delta = -.log (Rng.float_pos e.rng) /. lambda in
      if e.tau +. delta >= boundary then advance_step e
      else begin
        e.tau <- e.tau +. delta;
        let v = Fenwick.find e.fenwick (Rng.float e.rng *. lambda) in
        (* Float cancellation can leave a stale zero-weight slot at a
           sampling boundary; such a draw has probability ~0 and is
           retried. *)
        if Bitset.mem e.informed v then begin
          e.wasted_draws <- e.wasted_draws + 1;
          next_event e
        end
        else if not (Fault_plan.deliver e.faults e.rng) then begin
          (* The contact happened but its message was lost: time has
             advanced, no state changed — the rejection half of the
             thinning identity. *)
          e.lost <- e.lost + 1;
          next_event e
        end
        else begin
          inform_node e v;
          Informed (v, e.tau)
        end
      end
    end
  end

let run ?protocol ?rate ?faults ?(horizon = 1e7) ?max_events
    ?(record_trace = false) rng (net : Dynet.t) ~source =
  let budget =
    match max_events with
    | None -> max_int
    | Some b ->
      if b < 1 then invalid_arg "Async_cut.run: max_events must be positive";
      b
  in
  let e = create ?protocol ?rate ?faults rng net ~source in
  let trace = ref [] in
  let record tau =
    if record_trace then trace := (tau, Bitset.cardinal e.informed) :: !trace
  in
  record 0.;
  let events = ref 0 in
  let work = ref 0 in
  let finished = ref false in
  let out_of_time = ref false in
  while (not !finished) && not !out_of_time do
    (match next_event e with
    | Complete _ -> finished := true
    | Step_boundary (_, _) -> if e.tau >= horizon then out_of_time := true
    | Informed (_, tau) ->
      incr events;
      record tau);
    incr work;
    (* Watchdog: bound the total work (informing events, lost messages
       and step boundaries) and degrade to a censored result. *)
    if (not !finished) && !work + e.lost >= budget then out_of_time := true
  done;
  if Obs.enabled () then begin
    Obs.incr m_runs;
    Obs.incr (if !finished then m_completed else m_censored);
    Obs.add m_events !events;
    Obs.add m_lost e.lost;
    Obs.add m_wasted_draws e.wasted_draws;
    Obs.add m_steps (e.step + 1);
    Obs.add m_rebuilds e.rebuilds;
    Obs.add m_fenwick_ops e.fenwick_ops
  end;
  {
    Async_result.time = e.tau;
    complete = !finished;
    informed = e.informed;
    events = !events;
    steps = e.step + 1;
    lost = e.lost;
    trace = Array.of_list (List.rev !trace);
    informed_times = e.times;
  }
