open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic
open Rumor_faults
module Obs = Rumor_obs.Metrics

(* Telemetry (lib/obs): per-run tallies live in plain engine fields on
   the hot path and are flushed into the process-wide registry once
   per [run] — a disabled registry costs one atomic-bool load per
   run. *)
let m_runs = Obs.counter "async_cut.runs"
let m_completed = Obs.counter "async_cut.completed"
let m_censored = Obs.counter "async_cut.censored"
let m_events = Obs.counter "async_cut.events"
let m_lost = Obs.counter "async_cut.lost"
let m_wasted_draws = Obs.counter "async_cut.wasted_draws"
let m_steps = Obs.counter "async_cut.steps"
let m_rebuilds = Obs.counter "async_cut.weight_rebuilds"
let m_fenwick_ops = Obs.counter "async_cut.fenwick_ops"
let m_delta_steps = Obs.counter "async_cut.delta_steps"
let m_delta_updates = Obs.counter "async_cut.delta_node_updates"

(* Worst observed |Fenwick total - freshly recomputed total| at a
   periodic rebuild: the floating-point drift the incremental updates
   accumulated before being canonicalised away. *)
let g_drift = Obs.gauge "async_cut.weight_drift"

(* Cut rate carried by an uninformed node v, per protocol:
   push-pull:  sum over informed neighbours u of (r_u/d_u + r_v/d_v)
   push:       sum over informed neighbours u of  r_u/d_u
   pull:       sum over informed neighbours u of  r_v/d_v
   where r_u is the node's fault-plan clock multiplier (1 without
   faults).  The global clock rate multiplies uniformly.  Crashed and
   partition-separated pairs contribute nothing; message loss is
   injected downstream by rejection (see next_event), which keeps the
   cut weights loss-free — the thinning identity makes both views
   distribution-identical, and rejection exercises a genuinely
   different code path than the rate-rescale it must agree with. *)
let pair_rate protocol ~du ~dv ~ru ~rv =
  match protocol with
  | Protocol.Push_pull -> (ru /. du) +. (rv /. dv)
  | Protocol.Push -> ru /. du
  | Protocol.Pull -> rv /. dv

type event =
  | Informed of int * float
  | Step_boundary of int * bool
  | Complete of float

type engine = {
  rng : Rng.t;
  instance : Dynet.instance;
  protocol : Protocol.t;
  rate : float;
  faults : Fault_plan.state;
  use_deltas : bool;
  rebuild_every : int;
  informed : Bitset.t;
  fenwick : Fenwick.t;
  scratch : float array;
  times : float array;
  touch_mark : Bytes.t;
  touch_buf : int array;
  mutable graph : Graph.t;
  mutable tau : float;
  mutable step : int;
  mutable lost : int;
  mutable informs_since_rebuild : int;
  mutable max_drift : float;
  (* telemetry tallies, flushed to Rumor_obs.Metrics by [run] *)
  mutable rebuilds : int;
  mutable fenwick_ops : int;
  mutable wasted_draws : int;
  mutable delta_steps : int;
  mutable delta_updates : int;
}

(* Cut weight of one slot, exactly as the full rebuild computes it
   (same neighbour order, same accumulation order), so a node touched
   by [apply_delta] carries the bit-identical weight a rebuild would
   have given it. *)
let node_weight e graph v =
  if Bitset.mem e.informed v || not (Fault_plan.alive e.faults v) then 0.
  else begin
    let dv = float_of_int (Graph.unsafe_degree graph v) in
    let rv = Fault_plan.rate e.faults v in
    let w = ref 0. in
    Graph.iter_neighbors
      (fun u ->
        if Bitset.mem e.informed u && Fault_plan.allows e.faults u v then
          w :=
            !w
            +. pair_rate e.protocol
                 ~du:(float_of_int (Graph.unsafe_degree graph u))
                 ~ru:(Fault_plan.rate e.faults u)
                 ~dv ~rv)
      graph v;
    !w *. e.rate
  end

let rebuild_weights e =
  let graph = e.graph in
  let n = Graph.n graph in
  e.rebuilds <- e.rebuilds + 1;
  e.fenwick_ops <- e.fenwick_ops + n;
  for v = 0 to n - 1 do
    e.scratch.(v) <- node_weight e graph v
  done;
  Fenwick.fill_from e.fenwick e.scratch;
  e.informs_since_rebuild <- 0

(* Same as [rebuild_weights], on an unchanged graph: measure how far
   the incrementally maintained weights drifted from a from-scratch
   recomputation before canonicalising them away.  Runs every
   [rebuild_every] informs in both the delta and the rebuild engine
   mode, so the two modes stay draw-for-draw comparable. *)
let periodic_rebuild e =
  let graph = e.graph in
  let n = Graph.n graph in
  let sum = ref 0. in
  for v = 0 to n - 1 do
    let w = node_weight e graph v in
    e.scratch.(v) <- w;
    sum := !sum +. w
  done;
  let drift = Float.abs (Fenwick.total e.fenwick -. !sum) in
  if drift > e.max_drift then e.max_drift <- drift;
  e.rebuilds <- e.rebuilds + 1;
  e.fenwick_ops <- e.fenwick_ops + n;
  Fenwick.fill_from e.fenwick e.scratch;
  e.informs_since_rebuild <- 0

(* O(Delta * maxdeg) incremental re-weighting after an edge delta.  The
   recompute set is exact: an uninformed node's weight depends on its
   own degree and incident edges (it is then an endpoint of a touched
   edge) and on the degrees of its informed neighbours (it is then a
   new-graph neighbour of an informed degree-changed node).  Informed
   slots are zero and stay zero. *)
let apply_delta e (d : Dynet.delta) =
  let graph = e.graph and informed = e.informed in
  let nt = ref 0 in
  let consider v =
    if
      Bytes.unsafe_get e.touch_mark v = '\000' && not (Bitset.mem informed v)
    then begin
      Bytes.unsafe_set e.touch_mark v '\001';
      e.touch_buf.(!nt) <- v;
      incr nt
    end
  in
  let consider_edge (u, v) =
    consider u;
    consider v
  in
  Array.iter consider_edge d.Dynet.added;
  Array.iter consider_edge d.Dynet.removed;
  Array.iter
    (fun w ->
      if Bitset.mem informed w then Graph.iter_neighbors consider graph w)
    d.Dynet.degree_changed;
  for i = 0 to !nt - 1 do
    let v = e.touch_buf.(i) in
    Bytes.unsafe_set e.touch_mark v '\000';
    Fenwick.set e.fenwick v (node_weight e graph v)
  done;
  e.fenwick_ops <- e.fenwick_ops + !nt;
  e.delta_updates <- e.delta_updates + !nt;
  e.delta_steps <- e.delta_steps + 1

(* Estimated delta-apply cost versus the O(n + 2m) rebuild; families
   like [alternating] legitimately ship deltas close to the full edge
   set, where replaying them would be slower than rebuilding. *)
let delta_affordable e (d : Dynet.delta) =
  let graph = e.graph in
  let est = ref (2 * Dynet.delta_size d) in
  Array.iter
    (fun w ->
      if Bitset.mem e.informed w then
        est := !est + Graph.unsafe_degree graph w)
    d.Dynet.degree_changed;
  2 * !est < Graph.n graph + Graph.volume graph

let inform_node e v =
  ignore (Bitset.add e.informed v);
  e.times.(v) <- e.tau;
  e.informs_since_rebuild <- e.informs_since_rebuild + 1;
  Fenwick.set e.fenwick v 0.;
  e.fenwick_ops <- e.fenwick_ops + 1;
  let graph = e.graph in
  let dv = float_of_int (Graph.unsafe_degree graph v) in
  let rv = Fault_plan.rate e.faults v in
  Graph.iter_neighbors
    (fun x ->
      if (not (Bitset.mem e.informed x)) && Fault_plan.allows e.faults v x then begin
        e.fenwick_ops <- e.fenwick_ops + 1;
        Fenwick.add e.fenwick x
          (e.rate
          *. pair_rate e.protocol ~du:dv ~ru:rv
               ~dv:(float_of_int (Graph.unsafe_degree graph x))
               ~rv:(Fault_plan.rate e.faults x))
      end)
    graph v

let create ?(protocol = Protocol.Push_pull) ?(rate = 1.0)
    ?(faults = Fault_plan.none) ?(use_deltas = true) ?(rebuild_every = 8192)
    rng (net : Dynet.t) ~source =
  if rate <= 0. then invalid_arg "Async_cut.run: rate must be positive";
  if rebuild_every < 1 then
    invalid_arg "Async_cut.run: rebuild_every must be positive";
  let n = net.n in
  if source < 0 || source >= n then
    invalid_arg (Printf.sprintf "Async_cut.run: source %d out of range" source);
  let faults = Fault_plan.init faults ~n in
  let instance = net.spawn rng in
  let informed = Bitset.create n in
  ignore (Bitset.add informed source);
  let times = Array.make n Float.nan in
  times.(source) <- 0.;
  let info = Dynet.next instance ~informed in
  let e =
    {
      rng;
      instance;
      protocol;
      rate;
      faults;
      use_deltas;
      rebuild_every;
      informed;
      fenwick = Fenwick.create n;
      scratch = Array.make n 0.;
      times;
      touch_mark = Bytes.make n '\000';
      touch_buf = Array.make (max 1 n) 0;
      graph = info.Dynet.graph;
      tau = 0.;
      step = 0;
      lost = 0;
      informs_since_rebuild = 0;
      max_drift = 0.;
      rebuilds = 0;
      fenwick_ops = 0;
      wasted_draws = 0;
      delta_steps = 0;
      delta_updates = 0;
    }
  in
  rebuild_weights e;
  e

let time e = e.tau

let informed e = e.informed

let informed_count e = Bitset.cardinal e.informed

let informed_times e = e.times

let is_complete e = Bitset.is_full e.informed

let lost_count e = e.lost

let cut_weight e v = Fenwick.get e.fenwick v

let total_cut_rate e = Fenwick.total e.fenwick

let current_graph e = e.graph

let max_weight_drift e = e.max_drift

let advance_step e =
  e.tau <- float_of_int (e.step + 1);
  e.step <- e.step + 1;
  let next_info = Dynet.next e.instance ~informed:e.informed in
  e.graph <- next_info.Dynet.graph;
  let faults_changed = Fault_plan.advance e.faults e.rng ~step:e.step in
  (* A fault transition can re-weight arbitrary nodes (aliveness, clock
     rates, partitions), which an edge delta does not describe: always
     rebuild there. *)
  if faults_changed then rebuild_weights e
  else if next_info.Dynet.changed then begin
    match next_info.Dynet.delta with
    | Some d when e.use_deltas && delta_affordable e d -> apply_delta e d
    | _ -> rebuild_weights e
  end;
  Step_boundary (e.step, next_info.Dynet.changed)

let rec next_event e =
  if Bitset.is_full e.informed then Complete e.tau
  else begin
    let boundary = float_of_int (e.step + 1) in
    let lambda = Fenwick.total e.fenwick in
    if lambda <= 1e-300 then advance_step e
    else begin
      let delta = -.log (Rng.float_pos e.rng) /. lambda in
      if e.tau +. delta >= boundary then advance_step e
      else begin
        e.tau <- e.tau +. delta;
        let v = Fenwick.find e.fenwick (Rng.float e.rng *. lambda) in
        (* Float cancellation can leave a stale zero-weight slot at a
           sampling boundary; such a draw has probability ~0 and is
           retried. *)
        if Bitset.mem e.informed v then begin
          e.wasted_draws <- e.wasted_draws + 1;
          next_event e
        end
        else if not (Fault_plan.deliver e.faults e.rng) then begin
          (* The contact happened but its message was lost: time has
             advanced, no state changed — the rejection half of the
             thinning identity. *)
          e.lost <- e.lost + 1;
          next_event e
        end
        else begin
          inform_node e v;
          (* Bound floating-point drift: canonicalise all weights every
             [rebuild_every] informs (consumes no randomness). *)
          if e.informs_since_rebuild >= e.rebuild_every then
            periodic_rebuild e;
          Informed (v, e.tau)
        end
      end
    end
  end

let run ?protocol ?rate ?faults ?use_deltas ?rebuild_every ?(horizon = 1e7)
    ?max_events ?stop ?(record_trace = false) rng (net : Dynet.t) ~source =
  let should_stop =
    match stop with None -> (fun () -> false) | Some f -> f
  in
  let budget =
    match max_events with
    | None -> max_int
    | Some b ->
      if b < 1 then invalid_arg "Async_cut.run: max_events must be positive";
      b
  in
  let e = create ?protocol ?rate ?faults ?use_deltas ?rebuild_every rng net ~source in
  let trace = ref [] in
  let record tau =
    if record_trace then trace := (tau, Bitset.cardinal e.informed) :: !trace
  in
  record 0.;
  let events = ref 0 in
  let work = ref 0 in
  let finished = ref false in
  let out_of_time = ref false in
  while (not !finished) && not !out_of_time do
    (match next_event e with
    | Complete _ -> finished := true
    | Step_boundary (_, _) -> if e.tau >= horizon then out_of_time := true
    | Informed (_, tau) ->
      incr events;
      record tau);
    incr work;
    (* Watchdog: bound the total work (informing events, lost messages
       and step boundaries) and degrade to a censored result.  [stop]
       is the supervisor's cooperative brake (wall-clock deadlines):
       checked once per event, it consumes no randomness and censors
       the run exactly like an exhausted budget. *)
    if (not !finished) && (!work + e.lost >= budget || should_stop ()) then
      out_of_time := true
  done;
  if Obs.enabled () then begin
    Obs.incr m_runs;
    Obs.incr (if !finished then m_completed else m_censored);
    Obs.add m_events !events;
    Obs.add m_lost e.lost;
    Obs.add m_wasted_draws e.wasted_draws;
    Obs.add m_steps (e.step + 1);
    Obs.add m_rebuilds e.rebuilds;
    Obs.add m_fenwick_ops e.fenwick_ops;
    Obs.add m_delta_steps e.delta_steps;
    Obs.add m_delta_updates e.delta_updates;
    if e.max_drift > Obs.gauge_value g_drift then Obs.set g_drift e.max_drift
  end;
  {
    Async_result.time = e.tau;
    complete = !finished;
    informed = e.informed;
    events = !events;
    steps = e.step + 1;
    lost = e.lost;
    trace = Array.of_list (List.rev !trace);
    informed_times = e.times;
  }
