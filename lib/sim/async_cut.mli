(** Fast exact simulator of the asynchronous push–pull algorithm
    (Definition 1) on dynamic networks.

    Correctness rests on the same order-statistics identity the
    paper's analysis uses (Equation 1): each node's rate-1 clock with
    uniform neighbour marks thins into {e independent} Poisson contact
    processes of rate [1/d_u(tau)] per directed edge [(u -> v)].  Only
    contacts across the informed/uninformed cut change state, so the
    next state change arrives at rate

    [lambda(tau) = sum over cut edges {u,v} of (1/d_u + 1/d_v)]

    and the newly informed endpoint is that rate's categorical sample.
    Memorylessness lets the residual clock be re-drawn whenever
    [lambda] changes — at informing events and at integer graph
    switches.

    Cost: O(log n) per informing event via a Fenwick tree over
    per-node cut rates, O(deg) weight updates per informed node.  At a
    step boundary whose graph changed, a supplied {!Dynet.delta} is
    applied incrementally in O(Delta * maxdeg) — recomputing only the
    uninformed endpoints of touched edges and the uninformed
    neighbours of informed degree-changed nodes — with an O(m) full
    rebuild as the fallback (no delta, fault transition, or a delta so
    large that replaying it would cost more than rebuilding).  Every
    [rebuild_every] informing events (default 8192) all weights are
    recomputed from scratch to bound floating-point drift; the worst
    observed drift is exported as the [async_cut.weight_drift] gauge.
    The delta path recomputes touched weights with the rebuild's exact
    summation order, so the two paths produce the same informing
    sequence on the same seed (weights may differ by float
    canonicalisation residue of order 2^-52, never enough to flip a
    decision in practice — the differential suite pins outcome
    equality across all shipped families).

    The test suite checks this engine against the literal per-tick
    engine ({!Async_tick}) in distribution (means and two-sample KS).

    Two entry points: {!run} simulates to completion (or a horizon);
    the {!create}/{!next_event} stepping interface yields one event at
    a time so callers can interleave their own measurements, stopping
    rules or interventions.  [run] is implemented on the stepping
    interface and consumes the identical random-draw sequence. *)

open Rumor_util
open Rumor_rng
open Rumor_dynamic
open Rumor_faults

val pair_rate :
  Protocol.t -> du:float -> dv:float -> ru:float -> rv:float -> float
(** Directed informing rate carried by one cut pair: informed [u] of
    degree [du] and clock multiplier [ru], uninformed [v] of degree
    [dv] and multiplier [rv] — [ru/du + rv/dv] for push–pull, the
    respective single term for push or pull.  Exposed so closed-form
    consumers (the Rao–Blackwell control variate in {!Run}) share the
    engine's exact rate convention instead of restating it. *)

(** {1 One-shot driver} *)

val run :
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?use_deltas:bool ->
  ?rebuild_every:int ->
  ?horizon:float ->
  ?max_events:int ->
  ?stop:(unit -> bool) ->
  ?record_trace:bool ->
  Rng.t ->
  Dynet.t ->
  source:int ->
  Async_result.t
(** [run rng net ~source] simulates until every node is informed or
    [horizon] (default [1e7]) is reached.  [protocol] (default
    push–pull) selects which directed contact rates count toward the
    cut: push-only contributes [1/d_u] per informed neighbour [u],
    pull-only [1/d_v], push–pull their sum.  [rate] (default 1)
    scales every node clock uniformly (e.g. the paper's 2-push).

    [faults] (default {!Fault_plan.none}) injects message loss (by
    per-arrival rejection — distribution-identical to a rate rescale by
    the thinning identity of Eq. 1, but via a different mechanism, so
    the E13 self-check is non-trivial), node crash/recovery churn,
    per-node clock rates and partition windows.  With the trivial plan
    the engine consumes exactly the pre-fault random-draw sequence.

    [use_deltas] (default [true]) lets the engine apply the network's
    {!Dynet.delta}s incrementally; [false] forces the full O(m)
    rebuild on every changed step (the pre-delta behaviour, kept for
    differential testing and benchmarking).  [rebuild_every] (default
    8192) is the drift-bounding full-recompute period in informing
    events; it applies in both modes, so their weight states stay
    comparable.

    [max_events] is a watchdog: when the total processed work
    (informing events + lost messages + step boundaries) reaches it,
    the run degrades gracefully to a censored, incomplete result
    instead of spinning — e.g. under churn that never lets the last
    node recover.

    [stop] is a cooperative brake polled once per processed event: the
    first [true] censors the run exactly like an exhausted budget.  The
    supervised harness passes a wall-clock deadline check here; the
    closure must be cheap and must not touch any RNG.  Whether a run
    is stop-censored can depend on machine speed, but a censored
    outcome is always explicit — never a silently truncated sample.

    @raise Invalid_argument if [source] is out of range, [rate <= 0]
    or [max_events < 1]. *)

(** {1 Stepping interface} *)

type engine

type event =
  | Informed of int * float
      (** a node crossed the cut: [(node, time)] *)
  | Step_boundary of int * bool
      (** entered discrete step [t]; [true] iff the exposed graph
          changed *)
  | Complete of float  (** every node informed at the given time *)

val create :
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?use_deltas:bool ->
  ?rebuild_every:int ->
  Rng.t ->
  Dynet.t ->
  source:int ->
  engine
(** Fresh engine at time 0 with only [source] informed; the step-0
    graph is already exposed.
    @raise Invalid_argument as {!run}. *)

val next_event : engine -> event
(** Advance to the next event.  After [Complete] has been returned,
    further calls keep returning it.  On a permanently disconnected
    network this yields an unbounded stream of [Step_boundary] events —
    bound your loop by {!time} (as {!run} does with its horizon). *)

val time : engine -> float
(** Current simulation time. *)

val informed : engine -> Bitset.t
(** Live view of the informed set — do not mutate. *)

val informed_count : engine -> int

val informed_times : engine -> float array
(** Live per-node informing times ([nan] = not yet informed) — do not
    mutate. *)

val is_complete : engine -> bool

val lost_count : engine -> int
(** Messages dropped so far by the fault plan (0 without faults). *)

(** {1 Weight-state introspection} — exposed for the differential
    tests comparing the delta and rebuild paths. *)

val cut_weight : engine -> int -> float
(** Current Fenwick weight of a node (0 once informed). *)

val total_cut_rate : engine -> float
(** Current total informing rate [lambda]. *)

val current_graph : engine -> Rumor_graph.Graph.t
(** The graph exposed at the engine's current step. *)

val max_weight_drift : engine -> float
(** Worst drift observed so far at a periodic rebuild (0 before the
    first one). *)
