(** Monte-Carlo driver: repeated independent runs over index-keyed RNG
    streams, executed on a chunked Domain pool
    ({!Rumor_par.Pool}), with spread-time samples ready for the
    statistics layer.

    Every "with high probability" claim in the paper is validated by
    looking at high quantiles of these samples.

    {b Split-seed determinism.}  Each runner draws one 64-bit [base]
    from the parent RNG, and replicate [r] runs on
    [Rng.derive base r] — a pure function of [(base, r)].  The sample
    is therefore {e bit-identical for any} [jobs] {e count} (including
    under fault plans, which draw from the replicate's own stream),
    stable under changing [reps] (prefix property), and reproducible
    across checkpoint/resume (missing indices re-derive the same
    streams).  [jobs] defaults to {!Rumor_par.Pool.default_jobs}
    ([--jobs] / [RUMOR_JOBS] / processor count); [jobs = 1] degrades
    to a plain sequential loop.

    Two tiers of runner:

    - The classic samplers ({!async_spread_times} and friends) return a
      bare {!mc}; a raising replicate propagates (after every worker
      domain has joined, lowest-domain exception first).
    - The {e hardened} sweep ({!async_spread_sweep}) isolates replicate
      exceptions as [Failed] outcomes, caps runaway replicates through
      the engines' event-budget watchdog, and checkpoints replicate
      outcomes to disk keyed by split-RNG fingerprint (a pure function
      of the sweep seed and the replicate index) so an interrupted
      sweep resumes bit-identically.

    Metrics are recorded through per-domain shards
    ({!Rumor_obs.Metrics.Shard}) merged once the pool joins, so
    counter totals and histogram snapshots are byte-identical for any
    [jobs]. *)

open Rumor_rng
open Rumor_dynamic
open Rumor_faults

type engine = Cut | Tick

type mc = {
  times : float array;
      (** one spread time per repetition; incomplete (censored) runs
          contribute the time they reached — the horizon value — as
          the classic convention *)
  completed : int;  (** repetitions that informed every node *)
  reps : int;
}

type outcome = Checkpoint.outcome =
  | Finished of float
  | Censored of float
  | Failed of string

type sweep = {
  outcomes : outcome array;  (** one per repetition, in repetition order *)
  seeds : int64 array;  (** checkpoint key of each repetition's RNG *)
}

val source_of : Dynet.t -> int option -> int
(** Resolve an explicit source against the network's hint (explicit
    argument wins; hint next; node 0 otherwise). *)

(** {1 Per-replicate wall-clock deadlines}

    The supervised campaign harness (lib/harness) bounds every
    replicate's wall-clock time: an expired replicate is censored via
    the engines' cooperative [stop] brake, recorded in the
    [harness.deadline_censored] counter, and fed to the
    censoring-aware {!Estimate} path like any other censored sample.
    Deadline censoring is the one machine-dependent censoring source,
    so it is always explicit and excluded from the bit-identity
    contract (a run that trips no deadline remains bit-identical). *)

val set_default_deadline : float option -> unit
(** Install (or with [None] clear) a process-wide per-replicate
    deadline in seconds, applied by the async runners below when no
    explicit [?deadline_s] is given — this is how [rumor campaign
    --deadline] reaches replicates inside experiment code.
    @raise Invalid_argument if the value is [<= 0]. *)

val default_deadline : unit -> float option

val async_spread_times :
  ?jobs:int ->
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  ?deadline_s:float ->
  Rng.t ->
  Dynet.t ->
  mc
(** [async_spread_times rng net] runs the asynchronous algorithm
    [reps] (default 30) times with engine [Cut] by default; [protocol]
    (default push-pull), the clock [rate] (default 1) and the fault
    plan apply to either engine.  Replicates execute on [jobs] worker
    domains (default {!Rumor_par.Pool.default_jobs}); each repetition
    gets the index-keyed child stream described above, so the sample
    does not depend on [jobs] and is stable under changing [reps].
    Repetitions share no mutable state (each spawns its own [Dynet]
    instance).  A replicate exception propagates only after every
    spawned domain has joined.  [deadline_s] (default
    {!default_deadline}) censors any replicate whose wall-clock time
    exceeds it.
    @raise Invalid_argument if [jobs < 1]. *)

val async_spread_sweep :
  ?jobs:int ->
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  ?max_events:int ->
  ?checkpoint:string ->
  ?deadline_s:float ->
  Rng.t ->
  Dynet.t ->
  sweep
(** Hardened Monte-Carlo sweep on the same pool (same
    bit-identical-sample guarantee for any [jobs]):

    - {b exception isolation} — a replicate that raises is recorded as
      [Failed] with the printed exception and the sweep carries on; the
      sweep itself never raises because of a replicate, and spawned
      domains are always joined ([Fun.protect]).
    - {b watchdog} — [max_events] bounds each replicate's event count
      (see the engines' [max_events]); a capped replicate degrades to a
      [Censored] outcome carrying the time it reached.
    - {b checkpoint/resume} — with [checkpoint:path], decided outcomes
      are serialized to [path] keyed by each replicate's split-RNG
      fingerprint, itself a pure function of the sweep seed and the
      replicate {e index} (no sequential cursor; incrementally in
      sequential mode, and always on the way out — including the
      exception path).  A later sweep with the same parent RNG seed
      reuses them — whatever scattered subset of indices was decided,
      and whatever [jobs] either sweep uses — and re-runs only the
      missing replicates, reproducing bit-identical samples to an
      uninterrupted sweep.
    - {b deadline} — [deadline_s] (default {!default_deadline}) bounds
      each replicate's wall-clock time via the engines' cooperative
      [stop] brake; an expired replicate degrades to [Censored] and is
      tallied in [harness.deadline_censored].

    @raise Invalid_argument if [jobs < 1] or [reps < 1]. *)

(** {1 Adaptive sequential stopping}

    The adaptive sweep runs the {e same} replicates as
    {!async_spread_sweep} — one parent draw, index-derived child
    streams, identical per-replicate code — but in chunks, stopping as
    soon as the normal-approximation CI half-width over the finished
    prefix reaches the {!Rumor_stats.Adaptive.config} target (or the
    [max_reps] budget runs out).  Because the stopping decision is a
    pure function of outcomes in index order, the decided prefix is
    bit-identical to the same prefix of a fixed-count sweep seeded
    identically, for any job count — so checkpoints, the serve store
    and campaign WAL replay all remain valid across the two modes. *)

val set_default_adaptive : Rumor_stats.Adaptive.config option -> unit
(** Install (or with [None] clear) a process-wide adaptive config,
    picked up by {!Rumor_experiments.Workloads.measure_async}-style
    funnels the way {!set_default_deadline} reaches buried replicate
    loops.  [None] (the default) keeps every existing path
    byte-identical. *)

val default_adaptive : unit -> Rumor_stats.Adaptive.config option

val rao_blackwell_time :
  ?protocol:Protocol.t ->
  ?rate:float ->
  Rumor_graph.Graph.t ->
  informed_times:float array ->
  float
(** [rao_blackwell_time g ~informed_times] is the conditional
    expectation of the spread time given the informing {e order}: the
    sum over informing events of [1/R(S)], where [R(S)] is the total
    informing rate out of informed set [S] on static graph [g] under
    [protocol] (default push–pull) and clock [rate] (default 1) —
    rebuilt with the engine's own {!Async_cut.pair_rate}.  On a
    fault-free static network the observed time minus this value is an
    exactly zero-mean martingale residual, the control variate behind
    [?control] below.  Returns [nan] for incomplete trajectories (any
    non-finite entry) or trajectories impossible on [g] (an informing
    event from a zero-rate cut).
    @raise Invalid_argument on a length mismatch. *)

type adaptive = {
  sweep : sweep;
      (** the decided prefix: outcomes and seeds for replicates
          [0 .. consumed-1], bit-identical to the same prefix of a
          fixed-count sweep *)
  consumed : int;  (** replicates run *)
  used : int;  (** [Finished] replicates that entered the estimator *)
  mean : float;
      (** mean spread time over the finished prefix — control-variate
          adjusted when [control] is present ([nan] when [used = 0]) *)
  sd : float;  (** matching sample sd ([nan] below 2 samples) *)
  half_width : float;  (** CI half-width at the stopping point *)
  target_width : float;  (** the resolved width target *)
  level : float;
  reason : Rumor_stats.Adaptive.reason;
  batches : int;
  max_reps : int;  (** the budget ([= consumed] when [reason = Budget]) *)
  control : Rumor_stats.Adaptive.cv option;
      (** regression-estimator report (beta, variance ratio) when a
          usable control graph was supplied *)
}

val async_spread_sweep_adaptive :
  ?jobs:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  ?max_events:int ->
  ?checkpoint:string ->
  ?deadline_s:float ->
  ?control:Rumor_graph.Graph.t ->
  config:Rumor_stats.Adaptive.config ->
  Rng.t ->
  Dynet.t ->
  adaptive
(** Sequentially stopped variant of {!async_spread_sweep} (same
    hardening: exception isolation, watchdog, checkpoint, deadline).
    Censored and failed replicates consume budget but carry no sample;
    an all-censored sweep therefore stops only at the budget, with
    [mean = nan] — never a silently understated estimate.

    [control] supplies the static graph the network is known to
    simulate (see {!Rumor_dynamic.Family.static_graph}): each finished
    replicate's {!rao_blackwell_time} residual then drives a
    regression control variate, shrinking the CI — and the stopping
    point — without biasing the mean.  The control changes which
    prefix is {e decided}, never the replicate values themselves.
    @raise Invalid_argument when [control] is combined with [faults]
    (the closed-form rates no longer hold) or with [checkpoint]
    (cached outcomes carry no trajectory to replay), or when the
    control graph's order differs from the network's. *)

val sweep_counts : sweep -> int * int * int
(** [(finished, censored, failed)] outcome counts. *)

val usable_times : sweep -> float array
(** Spread times of the [Finished] replicates only, in repetition
    order — the hardened convention: censored replicates are {e
    excluded} (their recorded times understate the truth), unlike the
    classic {!mc}[.times] which includes them at the horizon value. *)

val quantiles_of_sweep : sweep -> float list -> float array
(** [quantiles_of_sweep s points] — empirical quantiles of
    {!usable_times} at each point of [points] (in [[0,1]], in the
    given order); [[||]] when no replicate finished.  This is the
    summary the serve layer caches, so its definition lives here,
    beside the sweep, where offline and served paths share it. *)

val first_failure : sweep -> string option
(** The first recorded [Failed] message, if any. *)

val mc_of_sweep : sweep -> mc
(** Collapse to the classic sample: [Finished] and [Censored] times
    (censored replicates contribute the time they reached, as the
    classic runner's horizon convention does); [Failed] replicates are
    dropped, so [reps] shrinks accordingly. *)

val sync_spread_rounds :
  ?jobs:int ->
  ?reps:int ->
  ?max_rounds:int ->
  ?protocol:Protocol.t ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** Same driver for the synchronous algorithm; times are round
    counts. *)

val flooding_rounds :
  ?jobs:int ->
  ?reps:int ->
  ?max_rounds:int ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
