(** Monte-Carlo driver: repeated independent runs over split RNG
    streams, with spread-time samples ready for the statistics layer.

    Every "with high probability" claim in the paper is validated by
    looking at high quantiles of these samples. *)

open Rumor_rng
open Rumor_dynamic

type engine = Cut | Tick

type mc = {
  times : float array;
      (** one spread time per repetition; incomplete runs contribute
          the horizon value *)
  completed : int;  (** repetitions that informed every node *)
  reps : int;
}

val source_of : Dynet.t -> int option -> int
(** Resolve an explicit source against the network's hint (explicit
    argument wins; hint next; node 0 otherwise). *)

val async_spread_times :
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** [async_spread_times rng net] runs the asynchronous algorithm
    [reps] (default 30) times with engine [Cut] by default; [protocol]
    (default push-pull) and the clock [rate] (default 1) apply to
    either engine.  Each repetition gets an independent child of [rng]
    (via split), so results are stable under changing [reps]. *)

val async_spread_times_parallel :
  ?domains:int ->
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** Same sample as {!async_spread_times} — bit-identical for the same
    [rng] seed — computed on up to [domains] (default 4) OCaml 5
    domains.  Child RNGs are pre-split sequentially and repetitions
    share no mutable state, so determinism is independent of
    scheduling.
    @raise Invalid_argument if [domains < 1]. *)

val sync_spread_rounds :
  ?reps:int ->
  ?max_rounds:int ->
  ?protocol:Protocol.t ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** Same driver for the synchronous algorithm; times are round
    counts. *)

val flooding_rounds :
  ?reps:int -> ?max_rounds:int -> ?source:int -> Rng.t -> Dynet.t -> mc
