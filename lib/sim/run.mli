(** Monte-Carlo driver: repeated independent runs over split RNG
    streams, with spread-time samples ready for the statistics layer.

    Every "with high probability" claim in the paper is validated by
    looking at high quantiles of these samples.

    Two tiers of runner:

    - The classic samplers ({!async_spread_times} and friends) return a
      bare {!mc}; a raising replicate propagates.
    - The {e hardened} sweep ({!async_spread_sweep}) isolates replicate
      exceptions as [Failed] outcomes, caps runaway replicates through
      the engines' event-budget watchdog, and checkpoints replicate
      outcomes to disk keyed by split-RNG seed so an interrupted sweep
      resumes bit-identically. *)

open Rumor_rng
open Rumor_dynamic
open Rumor_faults

type engine = Cut | Tick

type mc = {
  times : float array;
      (** one spread time per repetition; incomplete runs contribute
          the horizon value *)
  completed : int;  (** repetitions that informed every node *)
  reps : int;
}

type outcome = Checkpoint.outcome =
  | Finished of float
  | Censored of float
  | Failed of string

type sweep = {
  outcomes : outcome array;  (** one per repetition, in repetition order *)
  seeds : int64 array;  (** checkpoint key of each repetition's RNG *)
}

val source_of : Dynet.t -> int option -> int
(** Resolve an explicit source against the network's hint (explicit
    argument wins; hint next; node 0 otherwise). *)

val async_spread_times :
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** [async_spread_times rng net] runs the asynchronous algorithm
    [reps] (default 30) times with engine [Cut] by default; [protocol]
    (default push-pull), the clock [rate] (default 1) and the fault
    plan apply to either engine.  Each repetition gets an independent
    child of [rng] (via split), so results are stable under changing
    [reps]. *)

val async_spread_times_parallel :
  ?domains:int ->
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** Same sample as {!async_spread_times} — bit-identical for the same
    [rng] seed — computed on up to [domains] (default 4) OCaml 5
    domains.  Child RNGs are pre-split sequentially and repetitions
    share no mutable state, so determinism is independent of
    scheduling.  Every spawned domain is joined even if a replicate
    raises (on any domain); the first worker exception is re-raised
    once all domains are accounted for.
    @raise Invalid_argument if [domains < 1]. *)

val async_spread_sweep :
  ?domains:int ->
  ?reps:int ->
  ?horizon:float ->
  ?engine:engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  ?max_events:int ->
  ?checkpoint:string ->
  Rng.t ->
  Dynet.t ->
  sweep
(** Hardened Monte-Carlo sweep (default sequential; [domains] > 1 for
    the parallel variant with the same bit-identical-sample guarantee
    as {!async_spread_times_parallel}):

    - {b exception isolation} — a replicate that raises is recorded as
      [Failed] with the printed exception and the sweep carries on; the
      sweep itself never raises because of a replicate, and spawned
      domains are always joined ([Fun.protect]).
    - {b watchdog} — [max_events] bounds each replicate's event count
      (see the engines' [max_events]); a capped replicate degrades to a
      [Censored] outcome carrying the time it reached.
    - {b checkpoint/resume} — with [checkpoint:path], decided outcomes
      are serialized to [path] keyed by each replicate's split-RNG
      fingerprint (incrementally in sequential mode, and always on the
      way out — including the exception path).  A later sweep with the
      same parent RNG seed reuses them and re-runs only the missing
      replicates, reproducing bit-identical samples to an
      uninterrupted sweep.

    @raise Invalid_argument if [domains < 1] or [reps < 1]. *)

val sweep_counts : sweep -> int * int * int
(** [(finished, censored, failed)] outcome counts. *)

val usable_times : sweep -> float array
(** Spread times of the [Finished] replicates, in repetition order. *)

val first_failure : sweep -> string option
(** The first recorded [Failed] message, if any. *)

val mc_of_sweep : sweep -> mc
(** Collapse to the classic sample: [Finished] and [Censored] times
    (censored replicates contribute the time they reached, as the
    classic runner's horizon convention does); [Failed] replicates are
    dropped, so [reps] shrinks accordingly. *)

val sync_spread_rounds :
  ?reps:int ->
  ?max_rounds:int ->
  ?protocol:Protocol.t ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  mc
(** Same driver for the synchronous algorithm; times are round
    counts. *)

val flooding_rounds :
  ?reps:int -> ?max_rounds:int -> ?source:int -> Rng.t -> Dynet.t -> mc
