(** Empirical "spread time" in the paper's sense.

    The paper defines the spread time as the first time by which all
    nodes are informed {e with high probability} (failure probability
    [n^-c]).  Empirically that is a high quantile of the Monte-Carlo
    spread-time sample; this module packages the estimation with a
    bootstrap confidence interval so experiment conclusions carry
    uncertainty. *)

open Rumor_rng
open Rumor_dynamic

type t = {
  point : float;  (** the [q]-quantile point estimate *)
  ci_low : float;
  ci_high : float;  (** bootstrap percentile CI for the quantile *)
  q : float;  (** quantile used *)
  samples : float array;  (** the underlying spread-time sample *)
  completed : int;
  reps : int;
}

val whp_quantile : n:int -> float
(** The quantile matching the paper's w.h.p. convention at finite [n]:
    [1 - 1/n], clamped to [0.999]. *)

val spread_time :
  ?reps:int ->
  ?q:float ->
  ?horizon:float ->
  ?engine:Run.engine ->
  ?protocol:Protocol.t ->
  ?level:float ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  t
(** [spread_time rng net] runs [reps] (default 200) repetitions and
    estimates the [q]-quantile (default {!whp_quantile}) with a
    bootstrap [level] (default 0.95) confidence interval.  Incomplete
    runs contribute the horizon, so the estimate is conservative. *)

val pp : Format.formatter -> t -> unit
