(** Empirical "spread time" in the paper's sense.

    The paper defines the spread time as the first time by which all
    nodes are informed {e with high probability} (failure probability
    [n^-c]).  Empirically that is a high quantile of the Monte-Carlo
    spread-time sample; this module packages the estimation with a
    bootstrap confidence interval so experiment conclusions carry
    uncertainty. *)

open Rumor_rng
open Rumor_dynamic
open Rumor_faults

type t = {
  point : float;
      (** the [q]-quantile point estimate; [infinity] when the
          requested quantile falls inside the censored mass (see
          below) *)
  ci_low : float;
      (** bootstrap lower bound; when [point] is infinite this is the
          finite sample quantile — a lower confidence bound for the
          unknown spread time *)
  ci_high : float;  (** bootstrap upper bound ([infinity] when flagged) *)
  q : float;  (** quantile used *)
  samples : float array;  (** the underlying spread-time sample *)
  completed : int;
  censored : int;
      (** horizon-censored (incomplete) repetitions: their recorded
          times understate the true spread time *)
  reps : int;
}

val whp_quantile : n:int -> float
(** The quantile matching the paper's w.h.p. convention at finite [n]:
    [1 - 1/n], clamped to [0.999]. *)

val spread_time :
  ?jobs:int ->
  ?reps:int ->
  ?q:float ->
  ?horizon:float ->
  ?engine:Run.engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?level:float ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  t
(** [spread_time rng net] runs [reps] (default 200) repetitions and
    estimates the [q]-quantile (default {!whp_quantile}) with a
    bootstrap [level] (default 0.95) confidence interval.  [rate] and
    [faults] are forwarded to the engine (the E13 thinning self-check
    compares loss [p] against rate [1-p]); [jobs] is forwarded to the
    replicate pool (the estimate is bit-identical for any value).

    Horizon-censored repetitions are right-censored samples, {e not}
    observations: when the requested quantile's interpolation touches
    the censored mass the point estimate is flagged as [infinity]
    (with [ci_low] the finite sample quantile, a lower bound) instead
    of silently understating the spread time; otherwise censoring
    cannot move the quantile and the usual estimate is returned with
    [censored] surfaced. *)

val pp : Format.formatter -> t -> unit

(** {1 Adaptive mean estimate}

    Sequential stopping over the hardened sweep (see
    {!Run.async_spread_sweep_adaptive}): the estimand here is the
    {e mean} spread time — the CLT quantity the CI half-width targets —
    not the w.h.p. quantile above. *)

type adaptive = {
  mean : float;  (** control-variate adjusted when one was supplied *)
  half_width : float;
  level : float;
  target_width : float;
  consumed : int;  (** replicates actually run *)
  used : int;  (** finished replicates in the estimator *)
  saved : int;  (** budget left unspent ([max_reps - consumed]) *)
  reason : Rumor_stats.Adaptive.reason;
  variance_ratio : float option;  (** control-variate savings factor *)
  beta : float option;
}

val spread_time_adaptive :
  ?jobs:int ->
  ?horizon:float ->
  ?engine:Run.engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?source:int ->
  ?max_events:int ->
  ?checkpoint:string ->
  ?deadline_s:float ->
  ?control:Rumor_graph.Graph.t ->
  config:Rumor_stats.Adaptive.config ->
  Rng.t ->
  Dynet.t ->
  adaptive * Run.sweep
(** The summary plus the decided replicate prefix (for quantiles or
    persistence — it is a valid {!Run.sweep} in its own right). *)

val pp_adaptive : Format.formatter -> adaptive -> unit

(** {1 Stratified-by-source estimate} *)

type stratified = {
  mean : float;  (** equal-weight stratified mean over the sources *)
  half_width : float;
  level : float;
  sources : int array;
  allocation : int array;  (** Neyman allocation actually run *)
  per_stratum : (float * float * int) array;  (** (mean, sd, reps) each *)
}

val stratified_spread_time :
  ?jobs:int ->
  ?horizon:float ->
  ?engine:Run.engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?level:float ->
  ?pilot:int ->
  ?min_per:int ->
  budget:int ->
  sources:int array ->
  Rng.t ->
  Dynet.t ->
  stratified
(** Stratify the replicate budget across starting [sources]: a [pilot]
    pass (default 8 reps per stratum) estimates per-stratum sds, the
    remaining budget is Neyman-allocated proportionally to them (at
    least [min_per], default 4, each), and the final pass's per-stratum
    means combine into an equal-weight stratified estimate.  Times use
    the classic convention (censored replicates contribute the horizon
    value).  @raise Invalid_argument on an empty [sources]. *)
