(** Empirical "spread time" in the paper's sense.

    The paper defines the spread time as the first time by which all
    nodes are informed {e with high probability} (failure probability
    [n^-c]).  Empirically that is a high quantile of the Monte-Carlo
    spread-time sample; this module packages the estimation with a
    bootstrap confidence interval so experiment conclusions carry
    uncertainty. *)

open Rumor_rng
open Rumor_dynamic
open Rumor_faults

type t = {
  point : float;
      (** the [q]-quantile point estimate; [infinity] when the
          requested quantile falls inside the censored mass (see
          below) *)
  ci_low : float;
      (** bootstrap lower bound; when [point] is infinite this is the
          finite sample quantile — a lower confidence bound for the
          unknown spread time *)
  ci_high : float;  (** bootstrap upper bound ([infinity] when flagged) *)
  q : float;  (** quantile used *)
  samples : float array;  (** the underlying spread-time sample *)
  completed : int;
  censored : int;
      (** horizon-censored (incomplete) repetitions: their recorded
          times understate the true spread time *)
  reps : int;
}

val whp_quantile : n:int -> float
(** The quantile matching the paper's w.h.p. convention at finite [n]:
    [1 - 1/n], clamped to [0.999]. *)

val spread_time :
  ?jobs:int ->
  ?reps:int ->
  ?q:float ->
  ?horizon:float ->
  ?engine:Run.engine ->
  ?protocol:Protocol.t ->
  ?rate:float ->
  ?faults:Fault_plan.t ->
  ?level:float ->
  ?source:int ->
  Rng.t ->
  Dynet.t ->
  t
(** [spread_time rng net] runs [reps] (default 200) repetitions and
    estimates the [q]-quantile (default {!whp_quantile}) with a
    bootstrap [level] (default 0.95) confidence interval.  [rate] and
    [faults] are forwarded to the engine (the E13 thinning self-check
    compares loss [p] against rate [1-p]); [jobs] is forwarded to the
    replicate pool (the estimate is bit-identical for any value).

    Horizon-censored repetitions are right-censored samples, {e not}
    observations: when the requested quantile's interpolation touches
    the censored mass the point estimate is flagged as [infinity]
    (with [ci_low] the finite sample quantile, a lower bound) instead
    of silently understating the spread time; otherwise censoring
    cannot move the quantile and the usual estimate is returned with
    [censored] surfaced. *)

val pp : Format.formatter -> t -> unit
