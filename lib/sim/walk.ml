open Rumor_util
open Rumor_rng
open Rumor_graph
open Rumor_dynamic

type result = {
  steps : int;
  visited : int;
  complete : bool;
}

let walk ?(laziness = 0.) ?(max_steps = 10_000_000) rng (net : Dynet.t) ~start
    ~stop =
  if laziness < 0. || laziness >= 1. then
    invalid_arg "Walk: laziness must lie in [0, 1)";
  let n = net.Dynet.n in
  if start < 0 || start >= n then invalid_arg "Walk: start out of range";
  let instance = net.Dynet.spawn rng in
  let visited = Bitset.create n in
  ignore (Bitset.add visited start);
  let position = ref start in
  let steps = ref 0 in
  (* The walker's token set doubles as the adaptive families' informed
     set: a walk is a one-token rumor. *)
  let graph = ref (Dynet.next instance ~informed:visited).Dynet.graph in
  let finished = ref (stop visited !position) in
  while (not !finished) && !steps < max_steps do
    incr steps;
    (* One walk step per unit time against the current step's graph;
       the next step's graph is exposed at the integer boundary. *)
    if laziness = 0. || not (Rng.bernoulli rng laziness) then begin
      (* [position] is validated at entry and only ever replaced by a
         neighbour id: unchecked access. *)
      let deg = Graph.unsafe_degree !graph !position in
      if deg > 0 then
        position := Graph.unsafe_neighbor !graph !position (Rng.int rng deg)
    end;
    ignore (Bitset.add visited !position);
    if stop visited !position then finished := true
    else graph := (Dynet.next instance ~informed:visited).Dynet.graph
  done;
  {
    steps = !steps;
    visited = Bitset.cardinal visited;
    complete = !finished;
  }

let cover_time ?laziness ?max_steps rng net ~start =
  walk ?laziness ?max_steps rng net ~start ~stop:(fun visited _ ->
      Bitset.is_full visited)

let hitting_time ?laziness ?max_steps rng net ~start ~target =
  if target < 0 || target >= net.Dynet.n then
    invalid_arg "Walk.hitting_time: target out of range";
  walk ?laziness ?max_steps rng net ~start ~stop:(fun _ position ->
      position = target)

let mean_cover_time ?(reps = 20) ?laziness ?max_steps rng net ~start =
  let total = ref 0. in
  for _ = 1 to reps do
    let r = cover_time ?laziness ?max_steps (Rng.split rng) net ~start in
    total := !total +. float_of_int r.steps
  done;
  !total /. float_of_int reps
