(** Result record shared by the two asynchronous engines. *)

open Rumor_util

exception Horizon_exceeded of { horizon : float; informed : int }
(** Raised by {!spread_time_exn} on an incomplete run: [horizon] is the
    time the run reached before it was cut off (time horizon or event
    budget), [informed] how many nodes had the rumor by then.  Carrying
    both lets callers degrade gracefully — e.g. fall back to a censored
    sample — instead of parsing a [Failure] string. *)

type t = {
  time : float;
      (** spread time when [complete]; time reached when the horizon
          or event budget cut the run short *)
  complete : bool;  (** did every node get informed before the horizon *)
  informed : Bitset.t;  (** final informed set *)
  events : int;
      (** informing contacts (cut engine) or clock ticks (tick
          engine) processed *)
  steps : int;  (** discrete network steps consumed *)
  lost : int;
      (** rumor-carrying messages dropped by an injected
          {!Rumor_faults.Fault_plan} ([0] without faults) *)
  trace : (float * int) array;
      (** [(time, informed-count)] trajectory; empty unless tracing was
          requested.  Always starts with [(0., 1)] when recorded. *)
  informed_times : float array;
      (** per-node informing time: [informed_times.(u)] is when [u]
          learned the rumor ([0.] for the source, [nan] if never).
          Always recorded. *)
}

val spread_time_exn : t -> float
(** @raise Horizon_exceeded if the run did not complete. *)
