(** Result record shared by the two asynchronous engines. *)

open Rumor_util

type t = {
  time : float;
      (** spread time when [complete]; time reached when the horizon
          cut the run short *)
  complete : bool;  (** did every node get informed before the horizon *)
  informed : Bitset.t;  (** final informed set *)
  events : int;
      (** informing contacts (cut engine) or clock ticks (tick
          engine) processed *)
  steps : int;  (** discrete network steps consumed *)
  trace : (float * int) array;
      (** [(time, informed-count)] trajectory; empty unless tracing was
          requested.  Always starts with [(0., 1)] when recorded. *)
  informed_times : float array;
      (** per-node informing time: [informed_times.(u)] is when [u]
          learned the rumor ([0.] for the source, [nan] if never).
          Always recorded. *)
}

val spread_time_exn : t -> float
(** @raise Failure if the run did not complete. *)
