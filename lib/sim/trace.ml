type t = (float * int) array

let validate tr ~n =
  if Array.length tr = 0 then invalid_arg "Trace.validate: empty trajectory";
  let _, c0 = tr.(0) in
  if c0 < 1 then invalid_arg "Trace.validate: must start informed";
  for i = 1 to Array.length tr - 1 do
    let t0, n0 = tr.(i - 1) and t1, n1 = tr.(i) in
    if t1 < t0 then invalid_arg "Trace.validate: time not monotone";
    if n1 <= n0 then invalid_arg "Trace.validate: count not increasing";
    if n1 > n then invalid_arg "Trace.validate: count exceeds n"
  done

let time_to_count tr target =
  let found = ref None in
  Array.iter
    (fun (time, count) ->
      if !found = None && count >= target then found := Some time)
    tr;
  !found

(* Informed-count deltas bucketed by dynamic step: entry [s] is the
   number of nodes informed during [[s, s+1)).  The initial trajectory
   point (the source) is a baseline, not progress.  An event landing
   exactly on an integer boundary time [t = s] belongs to step [s] —
   consistent with the engines, which expose graph G(s) from time [s]
   onwards. *)
let per_step_progress tr =
  if Array.length tr = 0 then [||]
  else begin
    let last_time, _ = tr.(Array.length tr - 1) in
    let steps = int_of_float (Float.floor last_time) + 1 in
    let deltas = Array.make steps 0 in
    for i = 1 to Array.length tr - 1 do
      let t1, c1 = tr.(i) and _, c0 = tr.(i - 1) in
      let s = min (steps - 1) (int_of_float (Float.floor t1)) in
      deltas.(s) <- deltas.(s) + (c1 - c0)
    done;
    deltas
  end

let time_to_fraction tr ~n frac =
  if frac <= 0. || frac > 1. then
    invalid_arg "Trace.time_to_fraction: frac outside (0, 1]";
  time_to_count tr (int_of_float (Float.ceil (frac *. float_of_int n)))

(* Phase schedule from the proof of Theorem 1.1: while I <= n/2, a
   phase ends when the informed count reaches 3/2 of the phase-start
   count; once U <= n/2, a phase ends when the uninformed count halves. *)
let doubling_phases tr ~n =
  if Array.length tr = 0 then []
  else begin
    let phases = ref [] in
    let phase_start_time = ref (fst tr.(0)) in
    let phase_start_count = ref (snd tr.(0)) in
    let close time =
      phases := (time -. !phase_start_time) :: !phases;
      phase_start_time := time
    in
    Array.iter
      (fun (time, count) ->
        let start = !phase_start_count in
        let target =
          if start <= n / 2 then
            (* growth phase: informed x 3/2 (at least +1) *)
            max (start + 1) ((3 * start + 1) / 2)
          else
            (* shrink phase: uninformed halved *)
            n - ((n - start) / 2)
        in
        (* Zero-progress entries (count = start, possible only on the
           initial point) do not close a phase. *)
        if count > start && count >= target then begin
          close time;
          phase_start_count := count
        end)
      tr;
    List.rev !phases
  end

let phase_count_bound ~n =
  let nf = float_of_int (max 2 n) in
  let log32 = log (nf /. 2.) /. log 1.5 in
  let log2 = log nf /. log 2. in
  int_of_float (Float.ceil log32 +. Float.ceil log2) + 2
