type series = {
  label : char;
  points : (float * float) list;
}

let finite x = Float.is_finite x

let render ?(width = 60) ?(height = 16) ?(logx = false) ?(logy = false)
    ?title series =
  let tx x = if logx then log x else x in
  let ty y = if logy then log y else y in
  let usable (x, y) =
    finite x && finite y && ((not logx) || x > 0.) && ((not logy) || y > 0.)
  in
  let pts =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun p -> if usable p then Some (s.label, p) else None)
          s.points)
      series
  in
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  if pts = [] then begin
    Buffer.add_string buf "(no plottable points)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map (fun (_, (x, _)) -> tx x) pts in
    let ys = List.map (fun (_, (_, y)) -> ty y) pts in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let xmin = fmin xs and xmax = fmax xs in
    let ymin = fmin ys and ymax = fmax ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    let place (label, (x, y)) =
      let col =
        int_of_float (Float.round ((tx x -. xmin) /. xspan *. float_of_int (width - 1)))
      in
      let row =
        int_of_float (Float.round ((ty y -. ymin) /. yspan *. float_of_int (height - 1)))
      in
      let row = height - 1 - row in
      if row >= 0 && row < height && col >= 0 && col < width then
        grid.(row).(col) <- label
    in
    List.iter place pts;
    let axis_label v islog =
      if islog then Printf.sprintf "%.3g" (exp v) else Printf.sprintf "%.3g" v
    in
    for r = 0 to height - 1 do
      let tag =
        if r = 0 then axis_label ymax logy
        else if r = height - 1 then axis_label ymin logy
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "%10s |" tag);
      for c = 0 to width - 1 do
        Buffer.add_char buf grid.(r).(c)
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-8s%*s\n" ""
         (axis_label xmin logx)
         (width - 8)
         (axis_label xmax logx));
    Buffer.contents buf
  end
