type t = {
  mutable words : int array; (* 63 usable bits per word would waste one;
                                we use 62-bit-safe 60?  No: use 63 bits
                                of the native int, i.e. Sys.int_size. *)
  capacity : int;
  mutable card : int;
}

let bits_per_word = Sys.int_size

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (max 1 (words_for n)) 0; capacity = n; card = 0 }

let capacity s = s.capacity

let cardinal s = s.card

let check s i =
  if i < 0 || i >= s.capacity then
    invalid_arg
      (Printf.sprintf "Bitset: index %d out of range [0, %d)" i s.capacity)

let mem s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  s.words.(w) land (1 lsl b) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  let mask = 1 lsl b in
  if s.words.(w) land mask <> 0 then false
  else begin
    s.words.(w) <- s.words.(w) lor mask;
    s.card <- s.card + 1;
    true
  end

let remove s i =
  check s i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  let mask = 1 lsl b in
  if s.words.(w) land mask = 0 then false
  else begin
    s.words.(w) <- s.words.(w) land lnot mask;
    s.card <- s.card - 1;
    true
  end

let clear s =
  Array.fill s.words 0 (Array.length s.words) 0;
  s.card <- 0

let copy s = { s with words = Array.copy s.words }

let complement_into src dst =
  if src.capacity <> dst.capacity then
    invalid_arg "Bitset.complement_into: capacity mismatch";
  let n = src.capacity in
  for w = 0 to Array.length src.words - 1 do
    dst.words.(w) <- lnot src.words.(w)
  done;
  (* Mask off the bits beyond the capacity in the last word. *)
  let rem = n mod bits_per_word in
  if rem <> 0 then begin
    let last = Array.length dst.words - 1 in
    dst.words.(last) <- dst.words.(last) land ((1 lsl rem) - 1)
  end;
  dst.card <- n - src.card

let iter f s =
  for i = 0 to s.capacity - 1 do
    let w = i / bits_per_word and b = i mod bits_per_word in
    if s.words.(w) land (1 lsl b) <> 0 then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n members =
  let s = create n in
  List.iter (fun i -> ignore (add s i)) members;
  s

let is_full s = s.card = s.capacity

let equal a b =
  a.capacity = b.capacity && a.card = b.card
  &&
  let same = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) <> b.words.(w) then same := false
  done;
  !same

let pp fmt s =
  Format.fprintf fmt "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       Format.pp_print_int)
    (to_list s)
