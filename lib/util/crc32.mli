(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), table
    driven.

    Used by the durable-storage layers (the campaign WAL and the sweep
    checkpoint) to detect torn writes and bit rot: every persisted
    record carries the checksum of its payload, and loaders quarantine
    records whose checksum does not match instead of silently
    parsing garbage.

    Reference vector: [digest "123456789" = 0xCBF43926l]. *)

val update : int32 -> string -> pos:int -> len:int -> int32
(** Fold [len] bytes of [s] starting at [pos] into a running CRC
    state.  Start from {!init}; finish with {!finish} (the state is
    the one's-complemented register, as usual).
    @raise Invalid_argument on an out-of-bounds range. *)

val init : int32
(** Initial running state. *)

val finish : int32 -> int32
(** Close a running state into the final digest. *)

val digest : string -> int32
(** One-shot CRC-32 of a whole string. *)

val to_hex : int32 -> string
(** Lower-case, zero-padded 8-character hex rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless the input is exactly 8 hex
    digits. *)
