(* CRC-32/ISO-HDLC: reflected polynomial 0xEDB88320, init and final
   xor 0xFFFFFFFF.  The byte-at-a-time table is built once at module
   initialisation; [update] is a tight loop over it. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xFFFFFFFFl

let update state s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref state in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (String.unsafe_get s i)))) 0xFFl)
    in
    c := Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let finish state = Int32.logxor state 0xFFFFFFFFl

let digest s = finish (update init s ~pos:0 ~len:(String.length s))

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok = String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) s in
    if not ok then None else Int32.of_string_opt ("0x" ^ s)
