(** Fixed-capacity mutable bit sets over [0, capacity).

    Used throughout the simulators to represent the informed-node set
    {i I_tau}.  All operations besides [copy], [to_list] and [fold] are
    O(1) or O(capacity/64). *)

type t

val create : int -> t
(** [create n] is an empty set over universe [{0, ..., n-1}].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** Size of the universe the set ranges over. *)

val cardinal : t -> int
(** Number of members; maintained incrementally, O(1). *)

val mem : t -> int -> bool
(** [mem s i] tests membership. @raise Invalid_argument if [i] is out of
    range. *)

val add : t -> int -> bool
(** [add s i] inserts [i]; returns [true] iff [i] was not already a
    member. *)

val remove : t -> int -> bool
(** [remove s i] deletes [i]; returns [true] iff [i] was a member. *)

val clear : t -> unit
(** Remove all members. *)

val copy : t -> t
(** Independent copy. *)

val complement_into : t -> t -> unit
(** [complement_into src dst] sets [dst] to the complement of [src].
    Both must share the same capacity. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n members] builds a set over [{0, ..., n-1}]. *)

val is_full : t -> bool
(** [is_full s] iff every element of the universe is a member. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
