type 'a entry = { key : float; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.data in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let data' = Array.make cap' h.data.(0) in
  Array.blit h.data 0 data' 0 h.size;
  h.data <- data'

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).key < h.data.(parent).key then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && h.data.(left).key < h.data.(!smallest).key then
    smallest := left;
  if right < h.size && h.data.(right).key < h.data.(!smallest).key then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key payload =
  if h.size = 0 && Array.length h.data = 0 then
    h.data <- Array.make 16 { key; payload }
  else if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- { key; payload };
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.key, e.payload)

let pop h =
  if h.size = 0 then None
  else begin
    let e = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (e.key, e.payload)
  end

let pop_exn h =
  match pop h with
  | Some e -> e
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.size <- 0

let of_list entries =
  let h = create () in
  List.iter (fun (k, p) -> push h k p) entries;
  h
