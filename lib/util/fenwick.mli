(** Fenwick (binary indexed) tree over non-negative float weights.

    Backs the fast asynchronous engine: each uninformed node carries
    its incident cut rate, and sampling the next informed node is a
    prefix-sum search — O(log n) update and sample instead of an O(n)
    scan per event. *)

type t

val create : int -> t
(** [create n]: [n] slots, all zero. *)

val size : t -> int

val get : t -> int -> float
(** Current weight of a slot. *)

val set : t -> int -> float -> unit
(** Overwrite a slot's weight. @raise Invalid_argument if the weight is
    negative or not finite. *)

val add : t -> int -> float -> unit
(** Add to a slot's weight (the result must stay >= -1e-9; tiny
    negative residue from float cancellation is clamped to zero). *)

val total : t -> float
(** Sum of all weights. *)

val prefix_sum : t -> int -> float
(** [prefix_sum t i] is the sum of slots [0..i] inclusive. *)

val find : t -> float -> int
(** [find t x] with [0 <= x < total t] returns the smallest index [i]
    such that [prefix_sum t i > x] — i.e. samples proportionally when
    [x] is uniform on [[0, total)).
    @raise Invalid_argument if the total is zero. *)

val fill_from : t -> float array -> unit
(** Bulk-load weights in O(n). @raise Invalid_argument on a length
    mismatch or invalid weight. *)

val clear : t -> unit
