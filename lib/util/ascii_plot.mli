(** Minimal ASCII scatter/line plots for experiment output.

    Used to eyeball growth shapes (e.g. the Theta(n^2) worst case of
    Remark 1.4) directly in terminal output without any plotting
    dependency. *)

type series = {
  label : char;  (** one-character glyph used for this series' points *)
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  ?title:string ->
  series list ->
  string
(** [render series] draws all series in one frame, auto-scaling axes to
    the union of points.  Non-finite or (with log scales) non-positive
    points are skipped.  Returns a multi-line string. *)
