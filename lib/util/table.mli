(** Aligned plain-text tables for experiment output.

    Every experiment in the harness renders its rows through this module
    so that [bench/main.exe] and the CLI produce uniform, diffable
    tables (also pasted into EXPERIMENTS.md). *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Right] for
    every column.
    @raise Invalid_argument if [aligns] is given with a length different
    from [headers]. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument on arity mismatch with the header. *)

val add_rows : t -> string list list -> unit

val headers : t -> string list

val rows : t -> string list list
(** Rows in insertion order — the observability sinks re-emit them as
    structured (JSONL) records next to the printed table. *)

val render : t -> string
(** Multi-line rendering with a header separator, ready to print. *)

val print : ?title:string -> t -> unit
(** [print t] writes the rendered table (preceded by [title], if any)
    to stdout, followed by a blank line. *)

(** Cell formatting helpers used across experiments. *)

val cell_f : ?digits:int -> float -> string
(** Fixed-point float cell, default 2 digits. NaN renders as ["-"]. *)

val cell_g : float -> string
(** Compact significant-digit float cell. *)

val cell_i : int -> string
