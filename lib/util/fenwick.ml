type t = {
  n : int;
  tree : float array; (* 1-based internal indexing *)
  raw : float array;  (* per-slot weights, for O(1) get *)
}

let create n =
  if n < 0 then invalid_arg "Fenwick.create: negative size";
  { n; tree = Array.make (n + 1) 0.; raw = Array.make (max 1 n) 0. }

let size t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.get: index out of range";
  t.raw.(i)

let check_weight w =
  if not (Float.is_finite w) then invalid_arg "Fenwick: non-finite weight"

let internal_add t i delta =
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) +. delta;
    i := !i + (!i land - !i)
  done

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add: index out of range";
  check_weight delta;
  let updated = t.raw.(i) +. delta in
  let updated = if updated < 0. then 0. else updated in
  let real_delta = updated -. t.raw.(i) in
  t.raw.(i) <- updated;
  internal_add t i real_delta

let set t i w =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.set: index out of range";
  check_weight w;
  if w < 0. then invalid_arg "Fenwick.set: negative weight";
  let delta = w -. t.raw.(i) in
  t.raw.(i) <- w;
  internal_add t i delta

let prefix_sum t i =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.prefix_sum: index out of range";
  let s = ref 0. in
  let i = ref (i + 1) in
  while !i > 0 do
    s := !s +. t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let total t = if t.n = 0 then 0. else prefix_sum t (t.n - 1)

let find t x =
  let tot = total t in
  if tot <= 0. then invalid_arg "Fenwick.find: zero total weight";
  let x = if x >= tot then tot *. (1. -. 1e-12) else x in
  (* Descend the implicit tree. *)
  let pos = ref 0 in
  let remaining = ref x in
  let log_floor =
    let rec go p = if p * 2 <= t.n then go (p * 2) else p in
    if t.n >= 1 then go 1 else 0
  in
  let step = ref log_floor in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.n && t.tree.(next) <= !remaining then begin
      remaining := !remaining -. t.tree.(next);
      pos := next
    end;
    step := !step / 2
  done;
  (* pos is the count of slots whose cumulative weight is <= x. *)
  let idx = !pos in
  if idx >= t.n then t.n - 1 else idx

let fill_from t weights =
  if Array.length weights <> t.n then
    invalid_arg "Fenwick.fill_from: length mismatch";
  Array.iter
    (fun w ->
      check_weight w;
      if w < 0. then invalid_arg "Fenwick.fill_from: negative weight")
    weights;
  Array.blit weights 0 t.raw 0 t.n;
  Array.fill t.tree 0 (t.n + 1) 0.;
  (* O(n) construction. *)
  for i = 1 to t.n do
    t.tree.(i) <- t.tree.(i) +. weights.(i - 1);
    let parent = i + (i land -i) in
    if parent <= t.n then t.tree.(parent) <- t.tree.(parent) +. t.tree.(i)
  done

let clear t =
  Array.fill t.tree 0 (t.n + 1) 0.;
  Array.fill t.raw 0 (Array.length t.raw) 0.
