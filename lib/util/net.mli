(** Stream-socket plumbing shared by every networked subsystem (the
    campaign coordinator and its TCP workers, [rumor serve],
    [rumor loadgen], the netchaos proxy).

    Address handling used to be [Unix.inet_addr_of_string] scattered
    per call site, which silently rejected hostnames; every [--host],
    [--listen] and [--connect] flag now goes through {!resolve}. *)

val resolve : string -> (Unix.inet_addr, string) result
(** Resolve a host name or numeric IPv4 address.  Numeric addresses
    short-circuit; names go through [getaddrinfo] restricted to IPv4
    stream sockets (everything in this repo binds [PF_INET]).  The
    error message names the host. *)

val resolve_exn : string -> Unix.inet_addr
(** {!resolve}, raising [Failure] with the same message. *)

val parse_hostport : ?default_host:string -> string -> (string * int, string) result
(** Parse a ["HOST:PORT"] (or bare ["PORT"]) flag value.  The host
    part is returned unresolved — resolution happens at socket-open
    time so the error lands where the connection is attempted.
    [default_host] (default ["127.0.0.1"]) fills in a missing or empty
    host part.  Ports outside [0..65535] (0 = kernel-assigned) are
    rejected. *)

val tune_stream_socket : Unix.file_descr -> unit
(** Set [TCP_NODELAY] (the frames here are small and latency-bound —
    Nagle batching would serialize grant/result round trips) and
    [SO_KEEPALIVE] (a half-open peer eventually surfaces as an error
    instead of pinning a connection forever).  Call on every accepted
    and every connected stream socket; on a Unix-domain socket the
    inapplicable options are silently skipped. *)
