(** Imperative binary min-heap keyed by floats.

    A general event-queue utility (the shipped engines sample the
    exponential-clock superposition directly, which is equivalent and
    allocation-free, but schedulers built on this library typically
    need a queue).  O(log n) push/pop; a [decrease]-free design: stale
    entries are lazily skipped by the caller via the payload. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key payload] inserts an entry. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-key entry, if any, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val of_list : (float * 'a) list -> 'a t
