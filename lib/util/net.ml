let resolve host =
  (* Fast path: a numeric address needs no resolver round trip (and
     works on hosts with no functional getaddrinfo at all). *)
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host ""
        [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | [] -> Error (Printf.sprintf "cannot resolve host %S" host)
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> Ok addr
    | _ :: _ -> Error (Printf.sprintf "no IPv4 address for host %S" host)
    | exception (Unix.Unix_error _ | Not_found) ->
      Error (Printf.sprintf "cannot resolve host %S" host))

let resolve_exn host =
  match resolve host with Ok a -> a | Error msg -> failwith msg

let parse_hostport ?(default_host = "127.0.0.1") s =
  let s = String.trim s in
  let host, port_s =
    match String.rindex_opt s ':' with
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (default_host, s)
  in
  let host = if host = "" then default_host else host in
  match int_of_string_opt port_s with
  | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
  | _ -> Error (Printf.sprintf "bad HOST:PORT %S (port must be 0..65535)" s)

let tune_stream_socket fd =
  (* Each option independently: a Unix-domain socket rejects
     TCP_NODELAY (EOPNOTSUPP) but that must not skip SO_KEEPALIVE on a
     TCP one, and vice versa. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  try Unix.setsockopt fd Unix.SO_KEEPALIVE true
  with Unix.Unix_error _ | Invalid_argument _ -> ()
