let string name =
  match Sys.getenv_opt name with Some "" | None -> None | some -> some

let warn name value expected =
  Printf.eprintf "warning: ignoring invalid %s=%S (expected %s)\n%!" name value
    expected

let flag ?(default = false) name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some ("0" | "false" | "no" | "off") -> false
  | Some other ->
    warn name other "a boolean: 1/0, true/false, yes/no, on/off";
    default

let int ~default name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None ->
      warn name s (Printf.sprintf "an integer; using %d" default);
      default)

let float ~default name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None ->
      warn name s (Printf.sprintf "a number; using %g" default);
      default)

let parse_duration s =
  let t = String.trim (String.lowercase_ascii s) in
  let num body scale =
    match float_of_string_opt (String.trim body) with
    | Some f when f > 0. && Float.is_finite f -> Ok (f *. scale)
    | _ ->
      Error
        (Printf.sprintf
           "invalid duration %S (expected a positive number with an optional \
            ms/s/m/h suffix, e.g. 500ms, 10s, 5m)"
           s)
  in
  let chop suffix = Filename.chop_suffix t suffix in
  if Filename.check_suffix t "ms" then num (chop "ms") 0.001
  else if Filename.check_suffix t "s" then num (chop "s") 1.0
  else if Filename.check_suffix t "m" then num (chop "m") 60.0
  else if Filename.check_suffix t "h" then num (chop "h") 3600.0
  else num t 1.0

let duration ~default name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match parse_duration s with
    | Ok v -> v
    | Error _ ->
      warn name s
        (Printf.sprintf "a duration like 500ms, 10s or 5m; using %gs" default);
      default)
