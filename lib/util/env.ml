let string name =
  match Sys.getenv_opt name with Some "" | None -> None | some -> some

let warn name value expected =
  Printf.eprintf "warning: ignoring invalid %s=%S (expected %s)\n%!" name value
    expected

let flag ?(default = false) name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some ("0" | "false" | "no" | "off") -> false
  | Some other ->
    warn name other "a boolean: 1/0, true/false, yes/no, on/off";
    default

let int ~default name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None ->
      warn name s (Printf.sprintf "an integer; using %d" default);
      default)

let float ~default name =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None ->
      warn name s (Printf.sprintf "a number; using %g" default);
      default)
