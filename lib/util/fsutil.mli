(** Filesystem durability helpers shared by the WAL and checkpoint
    layers.

    The atomic tmp→[fsync]→rename discipline makes file {e contents}
    durable, but the rename itself lives in the parent directory's
    entry table: until the directory inode is flushed, a power loss can
    roll the rename back and resurrect the old file (or nothing).
    {!fsync_dir} closes that window. *)

val fsync_dir : string -> unit
(** Open [dir] read-only, [fsync] it, close it.  Errors are swallowed:
    some filesystems (and all non-POSIX platforms) refuse to fsync a
    directory fd, and the publication is still as durable as it was
    before the call — this is a best-effort hardening, never a new
    failure mode. *)

val fsync_parent_dir : string -> unit
(** [fsync_parent_dir path] = [fsync_dir (Filename.dirname path)] —
    call after renaming something {e to} [path]. *)
