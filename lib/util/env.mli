(** Environment-variable parsing shared by the bench harness and the
    CLI.

    Unset (or empty) variables fall back silently; {e set but
    malformed} values are never swallowed — each prints one warning to
    stderr naming the variable, the rejected value and the fallback,
    then uses the default.  (A typo'd [RUMOR_BENCH_SEED=202O] used to
    silently benchmark seed 2020.) *)

val string : string -> string option
(** [None] when unset or empty. *)

val flag : ?default:bool -> string -> bool
(** Accepts [1/0], [true/false], [yes/no], [on/off]; warns and returns
    [default] (default [false]) on anything else. *)

val int : default:int -> string -> int

val float : default:float -> string -> float

val parse_duration : string -> (float, string) result
(** Parse a human-friendly duration into seconds: a positive number
    with an optional unit suffix — [ms] (milliseconds), [s] (seconds,
    also the bare-number default), [m] (minutes), [h] (hours).
    ["500ms"] is [Ok 0.5]; ["10s"], ["10"] are [Ok 10.]; zero,
    negative, non-finite and malformed inputs are [Error _] with a
    message naming the rejected string.  Shared by every CLI duration
    flag ([--heartbeat-timeout], [--chaos-kill-every], the serve and
    loadgen timeouts) and by {!duration}. *)

val duration : default:float -> string -> float
(** Environment-variable counterpart of {!parse_duration}, with the
    module's usual warn-and-fall-back contract. *)
