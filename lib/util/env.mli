(** Environment-variable parsing shared by the bench harness and the
    CLI.

    Unset (or empty) variables fall back silently; {e set but
    malformed} values are never swallowed — each prints one warning to
    stderr naming the variable, the rejected value and the fallback,
    then uses the default.  (A typo'd [RUMOR_BENCH_SEED=202O] used to
    silently benchmark seed 2020.) *)

val string : string -> string option
(** [None] when unset or empty. *)

val flag : ?default:bool -> string -> bool
(** Accepts [1/0], [true/false], [yes/no], [on/off]; warns and returns
    [default] (default [false]) on anything else. *)

val int : default:int -> string -> int

val float : default:float -> string -> float
