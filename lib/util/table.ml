type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) headers
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers arity mismatch";
      a
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.headers) (List.length row));
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let headers t = t.headers

let rows t = List.rev t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  let sep =
    List.init ncols (fun i -> String.make widths.(i) '-')
  in
  emit sep;
  List.iter emit rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s -> Printf.printf "%s\n" s
  | None -> ());
  print_string (render t);
  print_newline ()

let cell_f ?(digits = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let cell_g x = if Float.is_nan x then "-" else Printf.sprintf "%.4g" x

let cell_i = string_of_int
