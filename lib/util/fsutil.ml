let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let fsync_parent_dir path = fsync_dir (Filename.dirname path)
