open Rumor_util
open Rumor_rng

type churn = { crash : float; recover : float }

type partition = {
  from_step : int;
  until_step : int;
  side : int -> bool;
}

type t = {
  loss : float;
  node_rate : (int -> float) option;
  churn : churn option;
  partitions : partition list;
}

let none = { loss = 0.; node_rate = None; churn = None; partitions = [] }

let make ?(loss = 0.) ?node_rate ?churn ?(partitions = []) () =
  if loss < 0. || loss >= 1. || not (Float.is_finite loss) then
    invalid_arg "Fault_plan.make: loss must lie in [0, 1)";
  (match churn with
  | Some { crash; recover } ->
    if
      crash < 0. || crash > 1. || recover < 0. || recover > 1.
      || not (Float.is_finite crash)
      || not (Float.is_finite recover)
    then invalid_arg "Fault_plan.make: churn probabilities outside [0, 1]"
  | None -> ());
  List.iter
    (fun p ->
      if p.until_step <= p.from_step then
        invalid_arg "Fault_plan.make: empty partition window")
    partitions;
  { loss; node_rate; churn; partitions }

let message_loss p = make ~loss:p ()

let node_churn ~crash ~recover = make ~churn:{ crash; recover } ()

let partition_window ~from_step ~until_step ~side =
  make ~partitions:[ { from_step; until_step; side } ] ()

let trivial t =
  t.loss <= 0. && Option.is_none t.node_rate && Option.is_none t.churn
  && t.partitions = []

let availability { crash; recover } =
  if crash = 0. then 1.
  else if recover = 0. then 0.
  else recover /. (crash +. recover)

(* --- engine runtime state --- *)

type state = {
  plan : t;
  alive_set : Bitset.t option;  (* None = no churn, everyone alive *)
  rates : float array option;
  mutable active : partition list;
}

let plan st = st.plan

let active_at partitions step =
  List.filter (fun p -> p.from_step <= step && step < p.until_step) partitions

let init plan ~n =
  let alive_set =
    match plan.churn with
    | None -> None
    | Some _ ->
      let b = Bitset.create n in
      for v = 0 to n - 1 do
        ignore (Bitset.add b v)
      done;
      Some b
  in
  let rates = Option.map (fun f -> Array.init n f) plan.node_rate in
  Option.iter
    (Array.iter (fun r ->
         if r <= 0. || not (Float.is_finite r) then
           invalid_arg "Fault_plan.init: node rates must be positive and finite"))
    rates;
  { plan; alive_set; rates; active = active_at plan.partitions 0 }

(* The two filtered lists are built from the same source list in order,
   so element-wise physical equality decides whether the active window
   set changed. *)
let same_active a b =
  List.compare_lengths a b = 0 && List.for_all2 ( == ) a b

let advance st rng ~step =
  let churn_changed =
    match (st.plan.churn, st.alive_set) with
    | Some { crash; recover }, Some alive ->
      let changed = ref false in
      let n = Bitset.capacity alive in
      for v = 0 to n - 1 do
        (* exactly one draw per node per boundary, whatever its state *)
        if Bitset.mem alive v then begin
          if Rng.bernoulli rng crash then changed := Bitset.remove alive v || !changed
        end
        else if Rng.bernoulli rng recover then
          changed := Bitset.add alive v || !changed
      done;
      !changed
    | _ -> false
  in
  let active' = active_at st.plan.partitions step in
  let partition_changed = not (same_active st.active active') in
  st.active <- active';
  churn_changed || partition_changed

let alive st v =
  match st.alive_set with None -> true | Some b -> Bitset.mem b v

let blocked st u v = List.exists (fun p -> p.side u <> p.side v) st.active

let allows st u v = alive st u && alive st v && not (blocked st u v)

let rate st v = match st.rates with None -> 1.0 | Some r -> r.(v)

let node_rates st = st.rates

let deliver st rng = st.plan.loss <= 0. || not (Rng.bernoulli rng st.plan.loss)
