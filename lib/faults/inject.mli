(** Chaos injection for testing the hardened harness itself.

    Wraps a dynamic network so that chosen Monte-Carlo replicates blow
    up: the sweep runner must record them as failed without losing the
    other replicates, crashing, or leaking domains. *)

open Rumor_dynamic

exception Injected_failure of int
(** Carries the spawn index that was told to fail. *)

val failing : ?after_step:int -> spawns:int list -> Dynet.t -> Dynet.t
(** [failing ~spawns net] behaves like [net], except that the [i]-th
    call to [spawn] (0-based, counted atomically across domains) raises
    {!Injected_failure} from its step function when [List.mem i spawns]
    — at the first step by default, or at step [after_step] so a
    replicate can die mid-run. *)
