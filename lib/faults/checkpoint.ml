type outcome =
  | Finished of float
  | Censored of float
  | Failed of string

(* Telemetry (lib/obs): checkpoint I/O is rare but precious — a resume
   that silently reloads nothing is exactly the regression these
   counters surface. *)
module Obs = Rumor_obs.Metrics

let m_saves = Obs.counter "checkpoint.saves"
let m_loads = Obs.counter "checkpoint.loads"
let m_cached = Obs.counter "checkpoint.cached_outcomes"

let magic = "rumor-checkpoint v1"

let fingerprint rng = Rumor_rng.Rng.bits64 (Rumor_rng.Rng.copy rng)

let save path ~seeds ~outcomes =
  if Array.length seeds <> Array.length outcomes then
    invalid_arg "Checkpoint.save: seeds/outcomes length mismatch";
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i o ->
      match o with
      | None -> ()
      | Some (Finished t) ->
        Buffer.add_string buf (Printf.sprintf "%Lx finished %h\n" seeds.(i) t)
      | Some (Censored t) ->
        Buffer.add_string buf (Printf.sprintf "%Lx censored %h\n" seeds.(i) t)
      | Some (Failed msg) ->
        Buffer.add_string buf
          (Printf.sprintf "%Lx failed %s\n" seeds.(i) (String.escaped msg)))
    outcomes;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Sys.rename tmp path;
  Obs.incr m_saves

let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
    let seed = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    let kind, payload =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some j ->
        (String.sub rest 0 j, String.sub rest (j + 1) (String.length rest - j - 1))
    in
    match Int64.of_string_opt ("0x" ^ seed) with
    | None -> None
    | Some seed -> (
      match kind with
      | "finished" ->
        Option.map (fun t -> (seed, Finished t)) (float_of_string_opt payload)
      | "censored" ->
        Option.map (fun t -> (seed, Censored t)) (float_of_string_opt payload)
      | "failed" -> (
        match Scanf.unescaped payload with
        | msg -> Some (seed, Failed msg)
        | exception _ -> Some (seed, Failed payload))
      | _ -> None))

let load path =
  let table = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if line <> magic then
              match parse_line line with
              | Some (seed, o) -> Hashtbl.replace table seed o
              | None -> ()
          done
        with End_of_file -> ())
  end;
  Obs.incr m_loads;
  Obs.add m_cached (Hashtbl.length table);
  table
