type outcome =
  | Finished of float
  | Censored of float
  | Failed of string

(* Telemetry (lib/obs): checkpoint I/O is rare but precious — a resume
   that silently reloads nothing is exactly the regression these
   counters surface. *)
module Obs = Rumor_obs.Metrics
module Crc32 = Rumor_util.Crc32

let m_saves = Obs.counter "checkpoint.saves"
let m_loads = Obs.counter "checkpoint.loads"
let m_cached = Obs.counter "checkpoint.cached_outcomes"
let m_corrupt = Obs.counter "checkpoint.corrupt_lines"
let m_crc_mismatch = Obs.counter "checkpoint.crc_mismatches"
let m_bad_magic = Obs.counter "checkpoint.bad_magic"

let magic_v1 = "rumor-checkpoint v1"
let magic_v2 = "rumor-checkpoint v2"
let magic = magic_v2

let fingerprint rng = Rumor_rng.Rng.bits64 (Rumor_rng.Rng.copy rng)

let save path ~seeds ~outcomes =
  if Array.length seeds <> Array.length outcomes then
    invalid_arg "Checkpoint.save: seeds/outcomes length mismatch";
  (* Records first: the v2 header carries the CRC-32 of everything that
     follows it, so torn or bit-rotted payloads are detected on load. *)
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i o ->
      match o with
      | None -> ()
      | Some (Finished t) ->
        Buffer.add_string buf (Printf.sprintf "%Lx finished %h\n" seeds.(i) t)
      | Some (Censored t) ->
        Buffer.add_string buf (Printf.sprintf "%Lx censored %h\n" seeds.(i) t)
      | Some (Failed msg) ->
        Buffer.add_string buf
          (Printf.sprintf "%Lx failed %s\n" seeds.(i) (String.escaped msg)))
    outcomes;
  let payload = Buffer.contents buf in
  let header =
    Printf.sprintf "%s crc32=%s\n" magic_v2 (Crc32.to_hex (Crc32.digest payload))
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      output_string oc payload;
      (* Durability before visibility: the data must be on disk before
         the rename publishes it, or a crash can leave a named file
         with garbage (or empty) contents. *)
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  (* Directory-entry durability: the rename itself must survive power
     loss, not just the bytes behind it. *)
  Rumor_util.Fsutil.fsync_parent_dir path;
  Obs.incr m_saves

let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
    let seed = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    let kind, payload =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some j ->
        (String.sub rest 0 j, String.sub rest (j + 1) (String.length rest - j - 1))
    in
    match Int64.of_string_opt ("0x" ^ seed) with
    | None -> None
    | Some seed -> (
      match kind with
      | "finished" ->
        Option.map (fun t -> (seed, Finished t)) (float_of_string_opt payload)
      | "censored" ->
        Option.map (fun t -> (seed, Censored t)) (float_of_string_opt payload)
      | "failed" -> (
        match Scanf.unescaped payload with
        | msg -> Some (seed, Failed msg)
        | exception _ -> Some (seed, Failed payload))
      | _ -> None))

(* Split on '\n', dropping the empty tail a trailing newline leaves; a
   torn final write shows up as a (malformed) last element instead. *)
let split_lines s =
  let lines = String.split_on_char '\n' s in
  match List.rev lines with "" :: rev -> List.rev rev | _ -> lines

let load path =
  let table = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> In_channel.input_all ic)
    in
    let header, payload =
      match String.index_opt contents '\n' with
      | None -> (contents, "")
      | Some i ->
        ( String.sub contents 0 i,
          String.sub contents (i + 1) (String.length contents - i - 1) )
    in
    let version =
      if header = magic_v1 then Some `V1
      else if
        String.length header >= String.length magic_v2
        && String.sub header 0 (String.length magic_v2) = magic_v2
      then Some (`V2 header)
      else None
    in
    match version with
    | None ->
      (* Wrong or missing magic: this is not (any version of) a
         checkpoint file.  Refuse it loudly rather than scavenging
         lines out of arbitrary data. *)
      Obs.incr m_bad_magic;
      Printf.eprintf
        "checkpoint: %s does not start with a checkpoint magic line \
         (found %S); ignoring the file\n\
         %!"
        path
        (if String.length header > 40 then String.sub header 0 40 ^ "..."
         else header)
    | Some version ->
      (match version with
      | `V1 -> ()
      | `V2 header -> (
        (* "rumor-checkpoint v2 crc32=<hex8>": verify the payload
           checksum; a mismatch downgrades to per-line parsing (each
           record is independently parseable) but is surfaced. *)
        let expected =
          let prefix = magic_v2 ^ " crc32=" in
          let pl = String.length prefix in
          if
            String.length header >= pl
            && String.sub header 0 pl = prefix
          then Crc32.of_hex (String.sub header pl (String.length header - pl))
          else None
        in
        match expected with
        | Some crc when crc = Crc32.digest payload -> ()
        | _ ->
          Obs.incr m_crc_mismatch;
          Printf.eprintf
            "checkpoint: %s payload fails its CRC-32; parsing what \
             survives line by line\n\
             %!"
            path));
      let corrupt = ref 0 in
      let first_bad = ref 0 in
      List.iteri
        (fun i line ->
          (* Line numbers are 1-based and count the header. *)
          let lineno = i + 2 in
          if line <> "" && line <> magic_v1 then
            match parse_line line with
            | Some (seed, o) -> Hashtbl.replace table seed o
            | None ->
              if !corrupt = 0 then first_bad := lineno;
              incr corrupt)
        (split_lines payload);
      if !corrupt > 0 then begin
        Obs.add m_corrupt !corrupt;
        Printf.eprintf
          "checkpoint: %s: %d unparseable line%s dropped (first at line %d) \
           — the affected replicates will re-run\n\
           %!"
          path !corrupt
          (if !corrupt = 1 then "" else "s")
          !first_bad
      end
  end;
  Obs.incr m_loads;
  Obs.add m_cached (Hashtbl.length table);
  table
