(** Checkpoint/resume of partially completed Monte-Carlo sweeps.

    Each replicate of a sweep is keyed by the 64-bit fingerprint of its
    child RNG (the first output of a {e copy} of the child, so the key
    never perturbs the stream).  Because child streams are derived from
    the replicate {e index} ({!Rumor_rng.Rng.derive}), the keys — and
    hence the cached outcomes — are stable across interrupted and
    resumed runs, whatever job count or replicate total either run
    uses: a resumed sweep reproduces bit-identical samples to an
    uninterrupted one.

    Times are serialized as hexadecimal floats ([%h]) so the round trip
    through disk is exact.  The format is line-oriented text:

    {v
    rumor-checkpoint v1
    <seed-hex> finished <time-hex>
    <seed-hex> censored <time-hex>
    <seed-hex> failed <escaped message>
    v}

    Loading is tolerant: malformed lines are skipped (a torn write
    loses at most its own replicate), and {!save} writes through a
    temporary file renamed into place. *)

type outcome =
  | Finished of float  (** every node informed at this time *)
  | Censored of float
      (** horizon or event budget hit; the time reached (the true
          spread time exceeds it) *)
  | Failed of string  (** the replicate raised; printed exception *)

val fingerprint : Rumor_rng.Rng.t -> int64
(** Stable 64-bit key of an RNG state, without advancing it. *)

val save : string -> seeds:int64 array -> outcomes:outcome option array -> unit
(** Write every decided outcome ([Some _]) keyed by its seed.  Pending
    replicates ([None]) are omitted and will be re-run on resume.
    @raise Invalid_argument if the arrays' lengths differ. *)

val load : string -> (int64, outcome) Hashtbl.t
(** Read a checkpoint file back; skips lines it cannot parse.  Returns
    an empty table if the file does not exist. *)
