(** Checkpoint/resume of partially completed Monte-Carlo sweeps.

    Each replicate of a sweep is keyed by the 64-bit fingerprint of its
    child RNG (the first output of a {e copy} of the child, so the key
    never perturbs the stream).  Because child streams are derived from
    the replicate {e index} ({!Rumor_rng.Rng.derive}), the keys — and
    hence the cached outcomes — are stable across interrupted and
    resumed runs, whatever job count or replicate total either run
    uses: a resumed sweep reproduces bit-identical samples to an
    uninterrupted one.

    Times are serialized as hexadecimal floats ([%h]) so the round trip
    through disk is exact.  The format is line-oriented text:

    {v
    rumor-checkpoint v2 crc32=<hex8>
    <seed-hex> finished <time-hex>
    <seed-hex> censored <time-hex>
    <seed-hex> failed <escaped message>
    v}

    {b Durability} — {!save} writes through a temporary file that is
    flushed and [fsync]ed {e before} [Sys.rename] publishes it, so a
    crash at any point leaves either the old checkpoint or the new one,
    never a torn file under the final name.  The header carries the
    CRC-32 of the payload (everything after the header line).

    {b Load validation} — {!load} rejects (with a stderr warning and
    the [checkpoint.bad_magic] counter) any file whose first line is
    not a known magic; legacy ["rumor-checkpoint v1"] files (no CRC)
    are still read.  A v2 payload failing its CRC is surfaced via
    [checkpoint.crc_mismatches] and degrades to per-line parsing.
    Malformed lines are never silently dropped: they are counted in
    [checkpoint.corrupt_lines] and one stderr warning reports the
    first offending line number (a torn write still loses at most its
    own replicate). *)

type outcome =
  | Finished of float  (** every node informed at this time *)
  | Censored of float
      (** horizon or event budget hit; the time reached (the true
          spread time exceeds it) *)
  | Failed of string  (** the replicate raised; printed exception *)

val fingerprint : Rumor_rng.Rng.t -> int64
(** Stable 64-bit key of an RNG state, without advancing it. *)

val save : string -> seeds:int64 array -> outcomes:outcome option array -> unit
(** Write every decided outcome ([Some _]) keyed by its seed.  Pending
    replicates ([None]) are omitted and will be re-run on resume.
    @raise Invalid_argument if the arrays' lengths differ. *)

val load : string -> (int64, outcome) Hashtbl.t
(** Read a checkpoint file back (v2 with CRC verification, or legacy
    v1).  Returns an empty table if the file does not exist or its
    magic line is wrong; lines it cannot parse are counted and warned
    about, never silently skipped (see the format notes above). *)

val magic : string
(** First line of a freshly saved checkpoint file (version prefix;
    the v2 header additionally carries [" crc32=<hex8>"]). *)
