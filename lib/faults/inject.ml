open Rumor_dynamic

exception Injected_failure of int

let () =
  Printexc.register_printer (function
    | Injected_failure i -> Some (Printf.sprintf "Inject.Injected_failure(%d)" i)
    | _ -> None)

let failing ?(after_step = 0) ~spawns (base : Dynet.t) =
  let counter = Atomic.make 0 in
  {
    base with
    Dynet.name = Printf.sprintf "failing(%s)" base.Dynet.name;
    spawn =
      (fun rng ->
        let idx = Atomic.fetch_and_add counter 1 in
        let inner = base.Dynet.spawn rng in
        if List.mem idx spawns then
          Dynet.make_instance (fun ~step ~informed ->
              if step >= after_step then raise (Injected_failure idx)
              else Dynet.next inner ~informed)
        else inner);
  }
