(** Fault models injected into the simulation engines.

    The paper's whole analysis rests on the Poisson-thinning identity
    (Equation 1): each directed contact [u -> v] is an independent
    Poisson process of rate [1/d_u].  Independent per-message loss with
    probability [p] therefore thins every contact process to rate
    [(1-p)/d_u] — i.e. message loss is {e exactly} a uniform clock-rate
    rescale by [(1-p)].  That distribution-level invariant is what the
    fault machinery is validated against (experiment E13 and
    [test/test_faults.ml]): a run under injected loss must agree in
    distribution with a fault-free run at rate [(1-p)], on both the
    cut-rate and the literal tick engine.

    A {!t} is a pure description; {!init} instantiates the per-run
    mutable {!state} the engines carry.  Four fault classes compose:

    - {b message loss}: every rumor-carrying message is dropped
      independently with probability [loss].
    - {b node churn}: a per-node two-state Markov chain updated at
      every discrete step boundary; a crashed node is inert — it stops
      ticking, answers no pulls, and receives nothing — but keeps the
      rumor if it already has it.
    - {b clock heterogeneity}: node [u] ticks at rate
      [rate * node_rate u] instead of a uniform [rate].
    - {b partition windows}: during steps [from_step <= t < until_step]
      every contact between the two sides of [side] is blocked.

    A trivial plan ({!none}) makes the engines consume exactly the same
    random-draw sequence as the fault-free code path, so existing
    seeded results are unchanged. *)

open Rumor_rng

type churn = {
  crash : float;  (** P(alive -> crashed) per step boundary *)
  recover : float;  (** P(crashed -> alive) per step boundary *)
}

type partition = {
  from_step : int;  (** first step of the window (inclusive) *)
  until_step : int;  (** first step after the window *)
  side : int -> bool;  (** which side of the cut each node is on *)
}

type t = {
  loss : float;  (** per-message loss probability, in [[0, 1)] *)
  node_rate : (int -> float) option;
      (** per-node clock-rate multiplier (must be positive and finite);
          [None] = homogeneous rate 1.  Ignored by the round-synchronous
          engine, which has no clocks. *)
  churn : churn option;
  partitions : partition list;
}

val none : t
(** No faults: engines behave (and draw) exactly as without a plan. *)

val make :
  ?loss:float ->
  ?node_rate:(int -> float) ->
  ?churn:churn ->
  ?partitions:partition list ->
  unit ->
  t
(** Validating constructor.
    @raise Invalid_argument if [loss] is outside [[0, 1)], a churn
    probability is outside [[0, 1]], or a partition window is empty. *)

val message_loss : float -> t
(** [message_loss p] = [make ~loss:p ()]. *)

val node_churn : crash:float -> recover:float -> t

val partition_window :
  from_step:int -> until_step:int -> side:(int -> bool) -> t

val trivial : t -> bool
(** Is this plan observationally the empty plan? *)

val availability : churn -> float
(** Stationary probability that a node is alive:
    [recover / (crash + recover)] (1 if both are 0). *)

(** {1 Engine runtime state}

    The engines own one {!state} per run.  With a trivial plan no
    operation below consumes randomness, so fault-free runs stay
    bit-identical to the pre-fault code path. *)

type state

val init : t -> n:int -> state
(** Fresh state at step 0: every node alive, step-0 partition windows
    active.
    @raise Invalid_argument if some node rate is non-positive or
    non-finite. *)

val plan : state -> t

val advance : state -> Rng.t -> step:int -> bool
(** Advance the fault state across the boundary into discrete [step]
    (engines call it with [step >= 1], once per boundary).  Flips each
    node's churn chain (exactly one Bernoulli draw per node per call
    when churn is configured, none otherwise) and refreshes the active
    partition windows.  Returns [true] iff anything observable changed
    — the cut engine must rebuild its rates then. *)

val alive : state -> int -> bool

val blocked : state -> int -> int -> bool
(** Is the [u]–[v] contact cut by a currently active partition? *)

val allows : state -> int -> int -> bool
(** [alive u && alive v && not (blocked u v)] — may this pair exchange
    messages right now? *)

val rate : state -> int -> float
(** Clock-rate multiplier of a node (1 for a trivial plan). *)

val node_rates : state -> float array option
(** The cached per-node rate array, [None] when rates are homogeneous
    (lets the tick engine keep its uniform sampler). *)

val deliver : state -> Rng.t -> bool
(** One message-delivery trial: [true] with probability [1 - loss].
    Draws nothing when [loss = 0]. *)
