(** Sequential stopping for Monte-Carlo estimation: run replicates in
    chunks and stop as soon as the confidence interval on the mean is
    tight enough, instead of brute-forcing a fixed replicate count.

    This module is pure statistics — it never runs a simulation.  The
    simulation wiring ({!Rumor_sim.Run.async_spread_sweep_adaptive})
    owns the replicate streams and feeds sample values through the
    chunk driver below; keeping the policy here means the serve layer,
    the bench harness and the tests all share one stopping rule.

    {b Stopping rule.}  After each chunk the driver computes the
    normal-approximation CI half-width [z(level) * sd / sqrt(used)]
    over the values seen so far (Welford accumulation via {!Stream}),
    and stops once the half-width is at or below the target and at
    least [min_reps] replicates were consumed.  Chow–Robbins-style
    sequential CIs are asymptotically valid; for small samples the
    usual caveat applies — optional stopping eats a little coverage —
    which is why [min_reps] exists and defaults well above 2.

    {b Determinism.}  The decision after chunk [k] is a pure function
    of the first [k] chunk values in index order, so a stopped prefix
    is bit-identical to the same prefix of a fixed-count run — for any
    job count — and checkpoints taken by either remain valid for the
    other. *)

(** Target precision: absolute half-width, or half-width relative to
    the absolute value of the running mean (scale-free — the right
    knob when one setting must cover sweeps of different sizes). *)
type width = Abs of float | Rel of float

type config = {
  width : width;
  level : float;  (** two-sided confidence level, e.g. 0.95 *)
  min_reps : int;  (** never stop before consuming this many replicates *)
  max_reps : int;  (** hard replicate budget *)
  chunk : int;  (** replicates decided between stopping checks *)
}

val config :
  ?level:float -> ?min_reps:int -> ?max_reps:int -> ?chunk:int -> width ->
  config
(** Defaults: [level = 0.95], [min_reps = 16], [max_reps = 4096],
    [chunk = 16].  @raise Invalid_argument on a non-positive width or
    chunk, [level] outside (0, 1), or [min_reps > max_reps]. *)

val z_of_level : float -> float
(** Two-sided normal critical value: [z_of_level 0.95 = 1.9600],
    [z_of_level 0.99 = 2.5758] (Acklam's inverse-normal approximation,
    absolute error < 1.2e-9).  @raise Invalid_argument outside (0,1). *)

val half_width : level:float -> count:int -> sd:float -> float
(** [z(level) * sd / sqrt count]; [infinity] when [count < 2] or [sd]
    is not finite. *)

val target : config -> mean:float -> float
(** Resolve the width spec against the running mean ([Rel] scales by
    [abs mean]; a [Rel] target with mean 0 or nan resolves to 0 — the
    driver then simply cannot converge before the budget). *)

type reason =
  | Converged  (** half-width at or below target *)
  | Budget  (** [max_reps] consumed first *)

type decision = Continue | Stop of reason

val decide :
  config -> consumed:int -> used:int -> mean:float -> sd:float -> decision
(** The stopping rule at a chunk boundary: [consumed] replicates were
    run, [used] of them produced a sample (censored/failed replicates
    consume budget but carry no value).  Pure — this is the function
    whose inputs-in-index-order make adaptive runs schedule
    independent. *)

type result = {
  consumed : int;  (** replicates run (the decided prefix length) *)
  used : int;  (** samples that entered the estimator *)
  mean : float;  (** nan when [used = 0] *)
  sd : float;  (** nan when [used < 2] *)
  half_width : float;  (** at the stopping point; [infinity] if unusable *)
  reason : reason;
  batches : int;  (** chunks executed *)
}

val run :
  config -> sample:(lo:int -> hi:int -> float option array) -> result
(** Generic chunk driver: requests replicate values for index ranges
    [[lo, hi)] ([hi - lo <= chunk], clamped at the budget), feeds the
    [Some] values into the running moments in index order, and applies
    {!decide} after each chunk.  [None] entries are censored/failed
    replicates.  The sampler must be index-deterministic for the
    prefix contract to mean anything. *)

(** {1 Control variates}

    Given per-replicate controls [c_i] with known expectation
    [control_mean], the adjusted sample [y_i - beta (c_i - control_mean)]
    has the same mean as [y] and, when [y] and [c] correlate, a smaller
    variance — the regression estimator with
    [beta = Cov(y, c) / Var(c)].  The simulation layer derives controls
    from the closed forms the constructed families carry (see
    {!Rumor_sim.Run.rao_blackwell_time}). *)

type cv = {
  beta : float;
  adjusted : float array;
  mean : float;  (** mean of [adjusted] *)
  sd : float;  (** sample sd of [adjusted] *)
  variance_ratio : float;
      (** [Var y / Var adjusted] — the replicate-savings factor at
          equal CI width; [1.] when the control is useless or
          degenerate *)
}

val control_variate :
  ?control_mean:float -> values:float array -> controls:float array -> unit ->
  cv
(** [control_mean] defaults to [0.] (an exactly-centred control, e.g. a
    martingale residual).  Degenerate inputs (fewer than 2 samples,
    zero control variance, non-finite moments) fall back to
    [beta = 0] — the unadjusted estimator — rather than raising.
    @raise Invalid_argument on length mismatch. *)

(** {1 Stratified allocation}

    Neyman allocation: given per-stratum standard deviations, spend a
    replicate budget proportionally to [sd] (the variance-optimal split
    for an equal-weight stratified mean). *)

module Strata : sig
  val neyman : budget:int -> min_per:int -> sds:float array -> int array
  (** Largest-remainder rounding of the Neyman proportions, after
      granting every stratum [min_per]; all-zero (or non-finite) sds
      degrade to an even split.  The result always sums to
      [max budget (min_per * strata)].
      @raise Invalid_argument on an empty [sds], negative budget or
      negative [min_per]. *)

  val combine :
    level:float -> means:float array -> sds:float array ->
    counts:int array -> float * float
  (** Equal-weight stratified estimate: [(mean, half_width)] where the
      mean averages the per-stratum means and the half-width propagates
      the per-stratum standard errors
      ([z/K * sqrt (sum sd_k^2 / n_k)]).  Strata with [counts < 2]
      make the half-width [infinity].
      @raise Invalid_argument on length mismatch or empty input. *)
end
