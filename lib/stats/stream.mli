(** One-pass streaming moments (Welford), for consumers — the load
    generator, long-lived servers — that cannot hold every sample.

    Constant memory, numerically stable: the incremental mean update
    avoids the catastrophic cancellation of the naive
    [sum-of-squares - mean^2] formula.  Not thread-safe; confine one
    accumulator to one domain. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased (n-1) sample variance; [nan] below two samples. *)

val stddev : t -> float
(** [sqrt variance]; [nan] below two samples. *)

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)
