(** Percentile-bootstrap confidence intervals.

    Used by the experiment harness when the Monte-Carlo sample of
    spread times is small or skewed (so the normal approximation in
    {!Descriptive.mean_ci95} would be dubious). *)

open Rumor_rng

val ci :
  ?replicates:int ->
  Rng.t ->
  statistic:(float array -> float) ->
  float array ->
  level:float ->
  float * float
(** [ci rng ~statistic xs ~level] resamples [xs] with replacement
    (default 1000 replicates), evaluates [statistic] on each resample
    and returns the central [level] percentile interval (e.g.
    [~level:0.95]).
    @raise Invalid_argument on an empty sample or a level outside
    (0, 1). *)

val mean_ci : ?replicates:int -> Rng.t -> float array -> level:float -> float * float
