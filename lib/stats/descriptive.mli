(** Descriptive statistics over float samples.

    Sums use Kahan compensation so the Monte-Carlo aggregations stay
    stable across tens of thousands of repetitions. *)

val sum : float array -> float
(** Kahan-compensated sum; [0.] on the empty array. *)

val mean : float array -> float
(** @raise Invalid_argument on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n-1]); [0.] on a singleton.
    @raise Invalid_argument on the empty array. *)

val stddev : float array -> float

val std_error : float array -> float
(** Standard error of the mean, [stddev / sqrt n]. *)

val min : float array -> float
(** @raise Invalid_argument on the empty array. *)

val max : float array -> float
(** @raise Invalid_argument on the empty array. *)

val mean_ci95 : float array -> float * float
(** Normal-approximation 95% confidence interval for the mean,
    [(lo, hi)]. *)
