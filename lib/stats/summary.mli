(** One-call summary of a Monte-Carlo sample: the record every
    experiment table row is printed from. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  q90 : float;
  q99 : float;
  max : float;
}

val of_samples : float array -> t
(** @raise Invalid_argument on an empty sample. *)

val pp : Format.formatter -> t -> unit
