type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable total : int;
  mutable under : int;
  mutable over : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: need hi > lo";
  if bins < 1 then invalid_arg "Histogram.create: need bins >= 1";
  { lo; hi; bins = Array.make bins 0; total = 0; under = 0; over = 0 }

let add t x =
  t.total <- t.total + 1;
  let nbins = Array.length t.bins in
  if x < t.lo then begin
    t.under <- t.under + 1;
    t.bins.(0) <- t.bins.(0) + 1
  end
  else if x >= t.hi then begin
    t.over <- t.over + 1;
    t.bins.(nbins - 1) <- t.bins.(nbins - 1) + 1
  end
  else begin
    let width = (t.hi -. t.lo) /. float_of_int nbins in
    let idx = int_of_float ((x -. t.lo) /. width) in
    let idx = min (nbins - 1) (max 0 idx) in
    t.bins.(idx) <- t.bins.(idx) + 1
  end

let count t = t.total

let bin_counts t = Array.copy t.bins

let underflow t = t.under

let overflow t = t.over

let bin_center t i =
  let nbins = Array.length t.bins in
  let width = (t.hi -. t.lo) /. float_of_int nbins in
  t.lo +. ((float_of_int i +. 0.5) *. width)

let to_rows t =
  Array.to_list (Array.mapi (fun i c -> (bin_center t i, c)) t.bins)

let empirical_tail xs x =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Histogram.empirical_tail: empty sample";
  let c = Array.fold_left (fun acc v -> if v > x then acc + 1 else acc) 0 xs in
  float_of_int c /. float_of_int n

let empirical_cdf xs x = 1. -. empirical_tail xs x
