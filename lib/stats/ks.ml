type result = {
  statistic : float;
  p_value : float;
}

(* Asymptotic Kolmogorov survival function Q(lambda) =
   2 sum_{j>=1} (-1)^{j-1} e^{-2 j^2 lambda^2}. *)
let kolmogorov_q lambda =
  if lambda <= 0. then 1.
  else begin
    let s = ref 0. in
    for j = 1 to 100 do
      let term =
        (if j mod 2 = 1 then 1. else -1.)
        *. exp (-2. *. float_of_int (j * j) *. lambda *. lambda)
      in
      s := !s +. term
    done;
    Float.max 0. (Float.min 1. (2. *. !s))
  end

let two_sample xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Ks.two_sample: empty sample";
  let a = Array.copy xs and b = Array.copy ys in
  Array.sort compare a;
  Array.sort compare b;
  (* Merge walk computing sup |F1 - F2|. *)
  let i = ref 0 and j = ref 0 in
  let d = ref 0. in
  let f1 () = float_of_int !i /. float_of_int n1 in
  let f2 () = float_of_int !j /. float_of_int n2 in
  while !i < n1 && !j < n2 do
    let x = a.(!i) and y = b.(!j) in
    if x <= y then incr i;
    if y <= x then incr j;
    d := Float.max !d (Float.abs (f1 () -. f2 ()))
  done;
  d := Float.max !d (Float.abs (f1 () -. f2 ()));
  let statistic = !d in
  let ne = float_of_int n1 *. float_of_int n2 /. float_of_int (n1 + n2) in
  let lambda = (sqrt ne +. 0.12 +. (0.11 /. sqrt ne)) *. statistic in
  { statistic; p_value = kolmogorov_q lambda }

let critical_value ~n1 ~n2 ~alpha =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Ks.critical_value: bad alpha";
  if n1 < 1 || n2 < 1 then invalid_arg "Ks.critical_value: bad sample sizes";
  let c = sqrt (-.log (alpha /. 2.) /. 2.) in
  c *. sqrt (float_of_int (n1 + n2) /. (float_of_int n1 *. float_of_int n2))
