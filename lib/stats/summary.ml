type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  q90 : float;
  q99 : float;
  max : float;
}

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Summary.of_samples: empty sample";
  let qs = Quantile.quantiles xs [ 0.5; 0.9; 0.99 ] in
  match qs with
  | [ median; q90; q99 ] ->
    {
      count = Array.length xs;
      mean = Descriptive.mean xs;
      stddev = Descriptive.stddev xs;
      min = Descriptive.min xs;
      median;
      q90;
      q99;
      max = Descriptive.max xs;
    }
  | _ -> assert false

let pp fmt s =
  Format.fprintf fmt
    "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f q90=%.3f q99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.median s.q90 s.q99 s.max
