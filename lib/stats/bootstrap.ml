open Rumor_rng

let ci ?(replicates = 1000) rng ~statistic xs ~level =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if level <= 0. || level >= 1. then invalid_arg "Bootstrap.ci: level outside (0, 1)";
  let stats = Array.make replicates 0. in
  let resample = Array.make n 0. in
  for r = 0 to replicates - 1 do
    for i = 0 to n - 1 do
      resample.(i) <- xs.(Rng.int rng n)
    done;
    stats.(r) <- statistic resample
  done;
  let alpha = (1. -. level) /. 2. in
  match Quantile.quantiles stats [ alpha; 1. -. alpha ] with
  | [ lo; hi ] -> (lo, hi)
  | _ -> assert false

let mean_ci ?replicates rng xs ~level =
  ci ?replicates rng ~statistic:Descriptive.mean xs ~level
