type width = Abs of float | Rel of float

type config = {
  width : width;
  level : float;
  min_reps : int;
  max_reps : int;
  chunk : int;
}

let width_value = function Abs w -> w | Rel w -> w

let config ?(level = 0.95) ?(min_reps = 16) ?(max_reps = 4096) ?(chunk = 16)
    width =
  let w = width_value width in
  if not (Float.is_finite w && w > 0.) then
    invalid_arg "Adaptive.config: width must be positive and finite";
  if not (level > 0. && level < 1.) then
    invalid_arg "Adaptive.config: level must lie in (0, 1)";
  if min_reps < 1 then invalid_arg "Adaptive.config: min_reps must be >= 1";
  if max_reps < min_reps then
    invalid_arg "Adaptive.config: max_reps must be >= min_reps";
  if chunk < 1 then invalid_arg "Adaptive.config: chunk must be >= 1";
  { width; level; min_reps; max_reps; chunk }

(* Acklam's rational approximation to the inverse normal CDF; absolute
   error below 1.2e-9 over (0, 1), more than enough for CI critical
   values.  Coefficients are the published ones. *)
let inv_normal_cdf p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Adaptive.z_of_level: probability outside (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  else if p <= p_high then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
    +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
       +. 1.)
  else
    let q = sqrt (-2. *. log (1. -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
       +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.))

let z_of_level level =
  if not (level > 0. && level < 1.) then
    invalid_arg "Adaptive.z_of_level: level must lie in (0, 1)";
  inv_normal_cdf (0.5 *. (1. +. level))

let half_width ~level ~count ~sd =
  if count < 2 || not (Float.is_finite sd) then infinity
  else z_of_level level *. sd /. sqrt (float_of_int count)

let target config ~mean =
  match config.width with
  | Abs w -> w
  | Rel w -> if Float.is_finite mean then w *. Float.abs mean else 0.

type reason = Converged | Budget
type decision = Continue | Stop of reason

let decide config ~consumed ~used ~mean ~sd =
  let converged =
    consumed >= config.min_reps
    && half_width ~level:config.level ~count:used ~sd <= target config ~mean
  in
  if converged then Stop Converged
  else if consumed >= config.max_reps then Stop Budget
  else Continue

type result = {
  consumed : int;
  used : int;
  mean : float;
  sd : float;
  half_width : float;
  reason : reason;
  batches : int;
}

let run config ~sample =
  let stream = Stream.create () in
  let consumed = ref 0 in
  let batches = ref 0 in
  let stopped = ref None in
  while Option.is_none !stopped do
    let lo = !consumed in
    let hi = min config.max_reps (lo + config.chunk) in
    let values = sample ~lo ~hi in
    if Array.length values <> hi - lo then
      invalid_arg "Adaptive.run: sampler returned wrong chunk length";
    Array.iter
      (function Some v -> Stream.add stream v | None -> ())
      values;
    consumed := hi;
    incr batches;
    let mean = Stream.mean stream and sd = Stream.stddev stream in
    match
      decide config ~consumed:!consumed ~used:(Stream.count stream) ~mean ~sd
    with
    | Continue -> ()
    | Stop reason -> stopped := Some reason
  done;
  let used = Stream.count stream in
  let mean = if used = 0 then Float.nan else Stream.mean stream in
  let sd = Stream.stddev stream in
  {
    consumed = !consumed;
    used;
    mean;
    sd;
    half_width = half_width ~level:config.level ~count:used ~sd;
    reason = Option.get !stopped;
    batches = !batches;
  }

type cv = {
  beta : float;
  adjusted : float array;
  mean : float;
  sd : float;
  variance_ratio : float;
}

let mean_sd xs =
  let s = Stream.create () in
  Array.iter (Stream.add s) xs;
  (Stream.mean s, Stream.stddev s, Stream.variance s)

let control_variate ?(control_mean = 0.) ~values ~controls () =
  let n = Array.length values in
  if Array.length controls <> n then
    invalid_arg "Adaptive.control_variate: length mismatch";
  let raw_mean, raw_sd, raw_var = mean_sd values in
  let degenerate () =
    {
      beta = 0.;
      adjusted = Array.copy values;
      mean = raw_mean;
      sd = raw_sd;
      variance_ratio = 1.;
    }
  in
  if n < 2 then degenerate ()
  else
    let c_mean, _, c_var = mean_sd controls in
    if not (Float.is_finite c_var && c_var > 0. && Float.is_finite raw_var)
    then degenerate ()
    else begin
      (* Sample covariance over the same n-1 divisor as the variances. *)
      let cov = ref 0. in
      for i = 0 to n - 1 do
        cov :=
          !cov +. ((values.(i) -. raw_mean) *. (controls.(i) -. c_mean))
      done;
      let cov = !cov /. float_of_int (n - 1) in
      let beta = cov /. c_var in
      if not (Float.is_finite beta) then degenerate ()
      else
        let adjusted =
          Array.init n (fun i ->
              values.(i) -. (beta *. (controls.(i) -. control_mean)))
        in
        let adj_mean, adj_sd, adj_var = mean_sd adjusted in
        let variance_ratio =
          if Float.is_finite adj_var && adj_var > 0. then raw_var /. adj_var
          else if raw_var > 0. then infinity
          else 1.
        in
        { beta; adjusted; mean = adj_mean; sd = adj_sd; variance_ratio }
    end

module Strata = struct
  let neyman ~budget ~min_per ~sds =
    let k = Array.length sds in
    if k = 0 then invalid_arg "Adaptive.Strata.neyman: empty sds";
    if budget < 0 then invalid_arg "Adaptive.Strata.neyman: negative budget";
    if min_per < 0 then invalid_arg "Adaptive.Strata.neyman: negative min_per";
    let weights =
      Array.map (fun s -> if Float.is_finite s && s > 0. then s else 0.) sds
    in
    let total_w = Array.fold_left ( +. ) 0. weights in
    let weights =
      if total_w > 0. then Array.map (fun w -> w /. total_w) weights
      else Array.make k (1. /. float_of_int k)
    in
    let alloc = Array.make k min_per in
    let spare = max 0 (budget - (min_per * k)) in
    if spare > 0 then begin
      (* Largest-remainder rounding of spare * weights. *)
      let exact = Array.map (fun w -> w *. float_of_int spare) weights in
      let floors = Array.map (fun e -> int_of_float (Float.floor e)) exact in
      let assigned = Array.fold_left ( + ) 0 floors in
      let order = Array.init k (fun i -> i) in
      Array.sort
        (fun i j ->
          compare
            (exact.(j) -. Float.of_int floors.(j))
            (exact.(i) -. Float.of_int floors.(i)))
        order;
      let leftover = spare - assigned in
      Array.iteri (fun rank i -> if rank < leftover then floors.(i) <- floors.(i) + 1) order;
      Array.iteri (fun i f -> alloc.(i) <- alloc.(i) + f) floors
    end;
    alloc

  let combine ~level ~means ~sds ~counts =
    let k = Array.length means in
    if k = 0 then invalid_arg "Adaptive.Strata.combine: empty input";
    if Array.length sds <> k || Array.length counts <> k then
      invalid_arg "Adaptive.Strata.combine: length mismatch";
    let mean = Array.fold_left ( +. ) 0. means /. float_of_int k in
    let var_sum = ref 0. in
    let ok = ref true in
    for i = 0 to k - 1 do
      if counts.(i) < 2 || not (Float.is_finite sds.(i)) then ok := false
      else var_sum := !var_sum +. (sds.(i) *. sds.(i) /. float_of_int counts.(i))
    done;
    let hw =
      if !ok then z_of_level level /. float_of_int k *. sqrt !var_sum
      else infinity
    in
    (mean, hw)
end
