(** Least-squares fits.

    The growth-shape experiments (E5, E6, E7) verify exponents by
    fitting [log y = alpha log x + beta]: a slope near 2 confirms the
    [Theta(n^2)] worst case of Remark 1.4, a slope near 1 confirms
    linear dichotomy legs, etc. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** 1.0 when only two points or a perfect fit *)
}

val linear : (float * float) list -> fit
(** Ordinary least squares on [(x, y)] pairs.
    @raise Invalid_argument with fewer than two points or zero x
    variance. *)

val log_log : (float * float) list -> fit
(** Fit on [(log x, log y)]; the slope is the empirical growth
    exponent.  Points with non-positive coordinates are rejected.
    @raise Invalid_argument as {!linear}, or on non-positive data. *)
