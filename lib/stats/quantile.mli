(** Sample quantiles (linear interpolation, type-7 as in R).

    "With high probability" claims are validated by looking at high
    quantiles of the measured spread time across Monte-Carlo seeds. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [[0, 1]]; sorts a copy internally.
    @raise Invalid_argument on an empty sample or [q] outside
    [[0, 1]]. *)

val median : float array -> float

val quantiles : float array -> float list -> float list
(** Multiple quantiles from a single sort. *)

val iqr : float array -> float
(** Interquartile range. *)
