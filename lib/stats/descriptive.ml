let sum xs =
  (* Kahan compensated summation. *)
  let s = ref 0. and c = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s

let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  require_nonempty "Descriptive.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "Descriptive.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let mu = mean xs in
    let devs = Array.map (fun x -> (x -. mu) *. (x -. mu)) xs in
    sum devs /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let std_error xs = stddev xs /. sqrt (float_of_int (Array.length xs))

let min xs =
  require_nonempty "Descriptive.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  require_nonempty "Descriptive.max" xs;
  Array.fold_left Float.max xs.(0) xs

let mean_ci95 xs =
  let mu = mean xs in
  let half = 1.96 *. std_error xs in
  (mu -. half, mu +. half)
