(** Fixed-width histograms and empirical tail probabilities.

    Theorem 1.7(iii) bounds the tail [Pr(spread > 2k)] on the dynamic
    star; experiment E8 compares the empirical tail computed here
    against the analytic envelope. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins < 1]. *)

val add : t -> float -> unit
(** Out-of-range samples land in saturated edge bins and are counted in
    [underflow]/[overflow]. *)

val count : t -> int
(** Total samples added (including out-of-range ones). *)

val bin_counts : t -> int array

val underflow : t -> int

val overflow : t -> int

val bin_center : t -> int -> float

val to_rows : t -> (float * int) list
(** [(bin_center, count)] pairs, in order. *)

(** {1 Empirical distribution helpers} *)

val empirical_tail : float array -> float -> float
(** [empirical_tail xs x] is the fraction of samples strictly greater
    than [x]. @raise Invalid_argument on an empty sample. *)

val empirical_cdf : float array -> float -> float
(** Fraction of samples [<= x]. *)
