type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let mean t = if t.count = 0 then Float.nan else t.mean

let variance t =
  if t.count < 2 then Float.nan else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)
let min t = if t.count = 0 then Float.nan else t.min
let max t = if t.count = 0 then Float.nan else t.max
