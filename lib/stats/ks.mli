(** Two-sample Kolmogorov–Smirnov test.

    The engine-agreement validation compares the spread-time
    {e distributions} of the cut-rate and tick engines, not just their
    means: the KS statistic [D = sup |F1 - F2|] with the asymptotic
    Kolmogorov p-value approximation. *)

type result = {
  statistic : float;  (** [D], the max CDF gap *)
  p_value : float;
      (** asymptotic two-sided p-value (Kolmogorov distribution
          approximation; adequate for the sample sizes used here) *)
}

val two_sample : float array -> float array -> result
(** @raise Invalid_argument if either sample is empty. *)

val critical_value : n1:int -> n2:int -> alpha:float -> float
(** The rejection threshold [c(alpha) sqrt((n1+n2)/(n1 n2))] with
    [c(alpha) = sqrt(-ln(alpha/2)/2)].
    @raise Invalid_argument unless [0 < alpha < 1] and both sizes are
    positive. *)
