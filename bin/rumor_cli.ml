(* rumor — command-line front end.

   Subcommands:
     describe    build a network and print its graph parameters
     simulate    run the async/sync/flooding algorithm, Monte-Carlo summary
     bound       evaluate the paper's spread-time bounds on a network
     sweep       sweep the node count and fit the growth exponent
     trace       one traced run: milestones, phases, CSV/DOT export
     faults      hardened Monte-Carlo sweep under injected faults
                 (message loss, churn, slow nodes, partitions) with
                 exception isolation, watchdog and checkpoint/resume
     experiment  run a registered paper-validation experiment (E1..E13,
                 A1, A2, O1, B1, R1, F1, L)
     campaign    run registry experiments under the crash-safe supervised
                 harness: durable WAL journal, per-replicate deadlines,
                 retry/backoff, failure budget, graceful SIGINT/SIGTERM
                 shutdown and bit-identical --resume; --workers N forks
                 N supervised worker processes (lease/epoch fencing,
                 heartbeats, crash recovery, optional chaos kills) with
                 outputs byte-identical to --workers 1
     worker      campaign worker process: forked by campaign --workers
                 (Unix socket), or started by hand with --connect to
                 join a remote campaign over TCP (reconnect/resume,
                 frame CRCs)
     netchaos    deterministic TCP chaos proxy (latency, jitter, drops,
                 corruption, resets) for exercising the campaign's
                 network fault tolerance
     serve       long-lived spread-time query daemon: JSONL (or
                 length-prefixed) queries over TCP, memoized sweep cache
                 with WAL-backed restart, request coalescing, bounded
                 admission queue with explicit load shedding
     loadgen     drive a query mix against a serve daemon (open/closed
                 loop) and report throughput + latency quantiles
     obs         observability utilities: dump the metric registry,
                 compare BENCH_*.json reports (exit 1 on regression)

   Every run subcommand takes --obs-out DIR (or RUMOR_OBS_OUT) to
   mirror its results as structured artifacts: a run manifest with the
   metric-registry snapshot, plus JSONL/CSV rows where applicable.

   Monte-Carlo subcommands (simulate, sweep, faults, experiment) take
   -j/--jobs J (or RUMOR_JOBS; default: the processor count) to run
   replicates on J OCaml domains.  Every replicate's RNG stream is
   keyed by its index, so the printed numbers are bit-identical for
   any job count.

   Network specifications (-N/--network):
     clique | star | cycle | path | hypercube | regular | er |
     g1 | g2 | diligent | absolute | alternating | markovian | mobile
   sized with -n and family parameters --rho, --degree, -p, -q. *)

open Cmdliner
open Rumor_core.Rumor

(* --- network construction from CLI parameters --- *)

type net_params = Family.params = {
  family : string;
  n : int;
  rho : float;
  degree : int;
  p : float;
  q : float;
  seed : int;
}

let build_network params = Family.build params

(* --- observability --- *)

let obs_out_arg =
  let doc =
    "Write observability artifacts under $(docv): a run manifest (seed, \
     engine, network, wall time, metric-registry snapshot) per command, \
     plus structured JSONL rows from experiments.  Also enables metric \
     collection.  Falls back to $(b,RUMOR_OBS_OUT) when the flag is absent."
  in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"DIR" ~doc)

let setup_obs obs_out =
  match
    (match obs_out with Some d -> Some d | None -> Env.string "RUMOR_OBS_OUT")
  with
  | Some dir ->
    Obs.Metrics.enable ();
    Obs.Sink.set_dir (Some dir)
  | None -> ()

(* Evaluated before every subcommand body: each command term below
   composes [$ obs_term] first. *)
let obs_term = Term.(const setup_obs $ obs_out_arg)

(* Durations ("500ms", "10s", "5m", "1h", bare seconds) share one
   parser with the RUMOR_* environment knobs. *)
let duration_conv : float Arg.conv =
  let parse s =
    match Env.parse_duration s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%gs" f)

(* "HOST:PORT" or bare "PORT" (host defaults to 127.0.0.1); the host
   stays unresolved until socket-open time. *)
let hostport_conv : (string * int) Arg.conv =
  let parse s =
    match Net.parse_hostport s with
    | Ok hp -> Ok hp
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

(* --- replicate pool --- *)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo replicates.  Samples are \
     bit-identical for any value (replicate RNG streams are keyed by \
     index, not by schedule).  Falls back to $(b,RUMOR_JOBS), then to \
     the detected processor count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"J" ~doc)

let setup_jobs jobs =
  match jobs with Some j -> Pool.set_default_jobs (Some j) | None -> ()

let jobs_term = Term.(const setup_jobs $ jobs_arg)

(* --- adaptive sequential stopping --- *)

type adaptive_flags = {
  ad_on : bool;
  ad_width : float;
  ad_rel : bool;
  ad_level : float;
  ad_min_reps : int;
  ad_chunk : int;
  ad_control : bool;
}

let adaptive_flags_term =
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Sequential stopping: run replicates in chunks and stop as soon \
             as the CI half-width on the mean spread time reaches \
             $(b,--ci-width) (or the replicate budget runs out).  The \
             decided replicate prefix is bit-identical to a fixed-count \
             run for any --jobs; fixed count remains the default and the \
             byte-identity reference.")
  in
  let ci_width =
    Arg.(
      value & opt float 0.1
      & info [ "ci-width" ] ~docv:"W"
          ~doc:
            "Target CI half-width: absolute, or relative to the running \
             mean with $(b,--ci-rel).")
  in
  let ci_rel =
    Arg.(
      value & flag
      & info [ "ci-rel" ]
          ~doc:"Interpret --ci-width relative to the absolute running mean.")
  in
  let ci_level =
    Arg.(
      value & opt float 0.95
      & info [ "ci-level" ] ~docv:"L"
          ~doc:"Two-sided confidence level of the stopping CI.")
  in
  let min_reps =
    Arg.(
      value & opt int 16
      & info [ "min-reps" ] ~docv:"R"
          ~doc:"Never stop before this many replicates.")
  in
  let chunk =
    Arg.(
      value & opt int 16
      & info [ "ci-chunk" ] ~docv:"K"
          ~doc:"Replicates between stopping checks.")
  in
  let control =
    Arg.(
      value & flag
      & info [ "control" ]
          ~doc:
            "Control variates: shrink the CI (and the stopping point) with \
             the closed-form Rao-Blackwell residual of the family's static \
             graph.  Static families only; ignored for dynamic families.")
  in
  Term.(
    const (fun ad_on ad_width ad_rel ad_level ad_min_reps ad_chunk ad_control ->
        { ad_on; ad_width; ad_rel; ad_level; ad_min_reps; ad_chunk; ad_control })
    $ adaptive $ ci_width $ ci_rel $ ci_level $ min_reps $ chunk $ control)

let adaptive_config_of flags ~max_reps =
  if not flags.ad_on then None
  else
    Some
      (Adaptive.config ~level:flags.ad_level
         ~min_reps:(min flags.ad_min_reps max_reps)
         ~max_reps ~chunk:flags.ad_chunk
         (if flags.ad_rel then Adaptive.Rel flags.ad_width
          else Adaptive.Abs flags.ad_width))

let adaptive_manifest_extra (a : Run.adaptive) =
  [
    ("adaptive_consumed", Obs.Json.Int a.Run.consumed);
    ("adaptive_budget", Obs.Json.Int a.Run.max_reps);
    ("adaptive_half_width", Obs.Json.Float a.Run.half_width);
    ( "adaptive_reason",
      Obs.Json.String
        (match a.Run.reason with
        | Adaptive.Converged -> "converged"
        | Adaptive.Budget -> "budget") );
  ]
  @
  match a.Run.control with
  | Some c ->
    [ ("adaptive_variance_ratio", Obs.Json.Float c.Adaptive.variance_ratio) ]
  | None -> []

(* Manifest fields recording the pool shape of the run just finished:
   resolved job count plus per-domain busy wall time. *)
let pool_manifest_extra () =
  match Pool.last () with
  | Some st ->
    [
      ("jobs", Obs.Json.Int st.Pool.jobs);
      ( "domain_wall_s",
        Obs.Json.List
          (Array.to_list (Array.map (fun w -> Obs.Json.Float w) st.Pool.wall_s))
      );
    ]
  | None -> [ ("jobs", Obs.Json.Int (Pool.default_jobs ())) ]

(* One provenance record per CLI invocation; no-op without a sink. *)
let write_manifest ~kind ~id ?engine ?n ?reps ?extra ~network params wall_s =
  if Obs.Sink.active () then
    Obs.Run_manifest.write
      (Obs.Run_manifest.make ~kind ~id ~seed:params.seed
         ~rng_fingerprint:(Checkpoint.fingerprint (Rng.create params.seed))
         ?engine ~network ?n ?reps ?extra ~wall_s ())

(* --- common options --- *)

let family_arg =
  let doc =
    "Network family: clique, star, cycle, path, hypercube, regular, er, g1, \
     g2, diligent, absolute, alternating, markovian, mobile."
  in
  Arg.(value & opt string "clique" & info [ "N"; "network" ] ~docv:"FAMILY" ~doc)

let n_arg =
  Arg.(value & opt int 128 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let rho_arg =
  Arg.(
    value & opt float 0.25
    & info [ "rho" ] ~docv:"RHO" ~doc:"Diligence parameter for the adaptive families.")

let degree_arg =
  Arg.(value & opt int 8 & info [ "degree" ] ~docv:"D" ~doc:"Degree for regular graphs.")

let p_arg =
  Arg.(
    value & opt float 0.05
    & info [ "p" ] ~docv:"P" ~doc:"Edge/birth probability (er, markovian).")

let q_arg =
  Arg.(value & opt float 0.2 & info [ "q" ] ~docv:"Q" ~doc:"Edge death probability (markovian).")

let seed_arg =
  Arg.(value & opt int 2020 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let params_term =
  let combine family n rho degree p q seed = { family; n; rho; degree; p; q; seed } in
  Term.(
    const combine $ family_arg $ n_arg $ rho_arg $ degree_arg $ p_arg $ q_arg
    $ seed_arg)

(* --- describe --- *)

let describe () params steps =
  let net = build_network params in
  let rng = Rng.create params.seed in
  Printf.printf "network: %s (n = %d)\n" net.Dynet.name net.Dynet.n;
  (match net.Dynet.source_hint with
  | Some s -> Printf.printf "source hint: node %d\n" s
  | None -> ());
  let inst = net.Dynet.spawn rng in
  let informed = Bitset.create net.Dynet.n in
  let table =
    Table.create
      ~aligns:Table.[ Right; Right; Right; Right; Right; Right; Right ]
      [ "step"; "m"; "min deg"; "max deg"; "connected"; "phi"; "rho_bar" ]
  in
  for step = 0 to steps - 1 do
    let info = Dynet.next inst ~informed in
    let g = info.Dynet.graph in
    let connected = Traverse.is_connected g in
    let phi =
      match info.Dynet.phi with
      | Some v -> Table.cell_g v
      | None ->
        if not connected then "0"
        else if Graph.n g <= Cut.exact_size_limit then
          Table.cell_g (Cut.conductance_exact g)
        else Table.cell_g (Spectral.conductance_sweep (Rng.create 7) g) ^ "~"
    in
    Table.add_row table
      [
        Table.cell_i step;
        Table.cell_i (Graph.m g);
        Table.cell_i (Graph.min_degree g);
        Table.cell_i (Graph.max_degree g);
        (if connected then "yes" else "no");
        phi;
        Table.cell_g (Metrics.absolute_diligence g);
      ]
  done;
  Table.print table

let describe_cmd =
  let steps =
    Arg.(value & opt int 4 & info [ "steps" ] ~docv:"T" ~doc:"Steps to expose.")
  in
  Cmd.v
    (Cmd.info "describe" ~doc:"Build a network and print per-step parameters.")
    Term.(const describe $ obs_term $ params_term $ steps)

(* --- simulate --- *)

let simulate () () params adaptive algorithm engine reps horizon source =
  let net = build_network params in
  let rng = Rng.create params.seed in
  let source = match source with -1 -> None | s -> Some s in
  let t0 = Obs.Clock.now_s () in
  let adaptive_run = ref None in
  let mc =
    match algorithm with
    | "async" ->
      let engine, protocol =
        match engine with
        | "cut" -> (Rumor_sim.Run.Cut, Protocol.Push_pull)
        | "tick" -> (Rumor_sim.Run.Tick, Protocol.Push_pull)
        | "push" -> (Rumor_sim.Run.Cut, Protocol.Push)
        | "pull" -> (Rumor_sim.Run.Cut, Protocol.Pull)
        | other -> failwith (Printf.sprintf "unknown engine %S" other)
      in
      (match adaptive_config_of adaptive ~max_reps:reps with
      | Some config ->
        let control =
          if adaptive.ad_control then Family.static_graph params else None
        in
        let a =
          Run.async_spread_sweep_adaptive ~horizon ~engine ~protocol ?source
            ?control ~config rng net
        in
        adaptive_run := Some a;
        Run.mc_of_sweep a.Run.sweep
      | None ->
        Run.async_spread_times ~reps ~horizon ~engine ~protocol ?source rng net)
    | "sync" ->
      Run.sync_spread_rounds ~reps ~max_rounds:(int_of_float horizon) ?source rng net
    | "flood" ->
      Run.flooding_rounds ~reps ~max_rounds:(int_of_float horizon) ?source rng net
    | other -> failwith (Printf.sprintf "unknown algorithm %S" other)
  in
  let wall_s = Obs.Clock.now_s () -. t0 in
  Printf.printf "%s on %s: %d/%d runs completed\n" algorithm net.Dynet.name
    mc.Run.completed mc.Run.reps;
  Printf.printf "spread time: %s\n"
    (Format.asprintf "%a" Summary.pp (Summary.of_samples mc.Run.times));
  (match !adaptive_run with
  | Some a ->
    Printf.printf
      "adaptive: %s after %d/%d reps (mean %.4f ± %.4f at %.0f%%%s)\n"
      (match a.Run.reason with
      | Adaptive.Converged -> "converged"
      | Adaptive.Budget -> "budget exhausted")
      a.Run.consumed a.Run.max_reps a.Run.mean a.Run.half_width
      (100. *. a.Run.level)
      (match a.Run.control with
      | Some c ->
        Printf.sprintf ", control variate %.1fx" c.Adaptive.variance_ratio
      | None -> "")
  | None -> ());
  write_manifest ~kind:"simulate"
    ~id:(Printf.sprintf "simulate-%s-%s" algorithm net.Dynet.name)
    ~engine:(if algorithm = "async" then engine else algorithm)
    ~n:net.Dynet.n ~reps ~network:net.Dynet.name
    ~extra:
      (("completed", Obs.Json.Int mc.Run.completed)
      :: ((match !adaptive_run with
          | Some a -> adaptive_manifest_extra a
          | None -> [])
         @ pool_manifest_extra ()))
    params wall_s

let simulate_cmd =
  let algorithm =
    Arg.(
      value & opt string "async"
      & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc:"async, sync or flood.")
  in
  let engine =
    Arg.(
      value & opt string "cut"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Async engine: cut (fast), tick (literal), push, pull.")
  in
  let reps =
    Arg.(value & opt int 30 & info [ "reps" ] ~docv:"R" ~doc:"Monte-Carlo repetitions.")
  in
  let horizon =
    Arg.(
      value & opt float 1e6
      & info [ "horizon" ] ~docv:"H" ~doc:"Time/round budget per run.")
  in
  let source =
    Arg.(
      value & opt int (-1)
      & info [ "source" ] ~docv:"NODE" ~doc:"Source node (-1 = family hint).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a rumor-spreading algorithm, Monte-Carlo style.")
    Term.(
      const simulate $ obs_term $ jobs_term $ params_term $ adaptive_flags_term
      $ algorithm $ engine $ reps $ horizon $ source)

(* --- bound --- *)

let bound () params c steps =
  let net = build_network params in
  let rng = Rng.create params.seed in
  let n = net.Dynet.n in
  let profiles = Bounds.profile ~steps rng net in
  let fmt = function
    | Some t -> string_of_int t
    | None -> Printf.sprintf "not reached in %d steps" steps
  in
  Printf.printf "network: %s (n = %d), profile of %d steps\n" net.Dynet.name n steps;
  let p0 = profiles.(0) in
  Printf.printf "step-0 parameters: phi = %.4g, rho = %.4g, rho_bar = %.4g\n"
    p0.Bounds.phi p0.Bounds.rho p0.Bounds.rho_abs;
  (try
     Printf.printf "Theorem 1.1  T(G,%.1f) = %s\n" c
       (fmt (Bounds.theorem_1_1_time ~c ~n profiles))
   with Invalid_argument _ ->
     Printf.printf
       "Theorem 1.1  T(G,%.1f) = unavailable (diligence unknown at this size; \
        use a family with analytic rho)\n"
       c);
  Printf.printf "Theorem 1.3  T_abs = %s\n" (fmt (Bounds.theorem_1_3_time ~n profiles));
  (try
     Printf.printf "Corollary 1.6 min = %s\n"
       (fmt (Bounds.corollary_1_6_time ~c ~n profiles))
   with Invalid_argument _ -> ());
  let giak = Giakkoupis.bound ~c:1. ~steps rng net in
  Printf.printf "Giakkoupis et al. [17]: M(G) = %.2f, bound = %s\n"
    giak.Giakkoupis.m_factor
    (fmt giak.Giakkoupis.bound_time)

let bound_cmd =
  let c =
    Arg.(
      value & opt float 1.
      & info [ "c" ] ~docv:"C" ~doc:"Failure-probability exponent of Theorem 1.1.")
  in
  let steps =
    Arg.(
      value & opt int 4096
      & info [ "steps" ] ~docv:"T" ~doc:"Profile length to accumulate over.")
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Evaluate the paper's spread-time bounds on a network.")
    Term.(const bound $ obs_term $ params_term $ c $ steps)

(* --- sweep --- *)

let sweep () () params adaptive sizes reps algorithm csv_path =
  let sizes =
    List.map
      (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> failwith (Printf.sprintf "bad size %S" s))
      (String.split_on_char ',' sizes)
  in
  let rows = ref [] in
  let consumed_total = ref 0 in
  let t0 = Obs.Clock.now_s () in
  let table =
    Table.create
      ~aligns:Table.[ Right; Right; Right; Right; Right; Right ]
      [ "n"; "mean"; "median"; "q90"; "q99"; "completed" ]
  in
  List.iter
    (fun n ->
      let size_params = { params with n } in
      let net = build_network size_params in
      let rng = Rng.create params.seed in
      let mc =
        match algorithm with
        | "async" -> (
          match adaptive_config_of adaptive ~max_reps:reps with
          | Some config ->
            let control =
              if adaptive.ad_control then Family.static_graph size_params
              else None
            in
            let a =
              Run.async_spread_sweep_adaptive ?control ~config rng net
            in
            consumed_total := !consumed_total + a.Run.consumed;
            Run.mc_of_sweep a.Run.sweep
          | None -> Run.async_spread_times ~reps rng net)
        | "sync" -> Run.sync_spread_rounds ~reps rng net
        | "flood" -> Run.flooding_rounds ~reps rng net
        | other -> failwith (Printf.sprintf "unknown algorithm %S" other)
      in
      let s = Summary.of_samples mc.Run.times in
      let cells =
        [
          string_of_int n;
          Printf.sprintf "%.4f" s.Summary.mean;
          Printf.sprintf "%.4f" s.Summary.median;
          Printf.sprintf "%.4f" s.Summary.q90;
          Printf.sprintf "%.4f" s.Summary.q99;
          Printf.sprintf "%d/%d" mc.Run.completed mc.Run.reps;
        ]
      in
      rows := cells :: !rows;
      Table.add_row table cells)
    sizes;
  Table.print
    ~title:(Printf.sprintf "%s spread-time sweep over %s" algorithm params.family)
    table;
  if adaptive.ad_on && algorithm = "async" then
    Printf.printf "adaptive: %d/%d replicates consumed across %d sizes\n"
      !consumed_total
      (reps * List.length sizes)
      (List.length sizes);
  (* Growth-shape fit over the medians. *)
  (match sizes with
  | _ :: _ :: _ ->
    let points =
      List.rev_map
        (fun cells ->
          (float_of_string (List.nth cells 0), float_of_string (List.nth cells 2)))
        !rows
    in
    let fit = Regression.log_log points in
    Printf.printf "log-log growth exponent of the median: %.3f (R^2 = %.3f)\n"
      fit.Regression.slope fit.Regression.r_squared
  | _ -> ());
  (match csv_path with
  | Some path ->
    Export.write_file path
      (Export.csv_of_rows
         ~header:[ "n"; "mean"; "median"; "q90"; "q99"; "completed" ]
         (List.rev !rows));
    Printf.printf "rows written to %s\n" path
  | None -> ());
  (* Mirror the table into the sink alongside the manifest. *)
  if Obs.Sink.active () then
    Obs.Sink.write_csv
      (Printf.sprintf "sweep-%s-%s.csv" algorithm params.family)
      ~header:[ "n"; "mean"; "median"; "q90"; "q99"; "completed" ]
      (List.rev !rows);
  write_manifest ~kind:"sweep"
    ~id:(Printf.sprintf "sweep-%s-%s" algorithm params.family)
    ~engine:algorithm ~reps ~network:params.family
    ~extra:
      (("sizes", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) sizes))
      :: ((if adaptive.ad_on && algorithm = "async" then
             [ ("adaptive_consumed", Obs.Json.Int !consumed_total) ]
           else [])
         @ pool_manifest_extra ()))
    params
    (Obs.Clock.now_s () -. t0)

let sweep_cmd =
  let sizes =
    Arg.(
      value
      & opt string "64,128,256,512"
      & info [ "sizes" ] ~docv:"N1,N2,..." ~doc:"Comma-separated node counts.")
  in
  let reps =
    Arg.(value & opt int 30 & info [ "reps" ] ~docv:"R" ~doc:"Repetitions per size.")
  in
  let algorithm =
    Arg.(
      value & opt string "async"
      & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc:"async, sync or flood.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the rows as CSV.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the node count and fit the growth exponent.")
    Term.(
      const sweep $ obs_term $ jobs_term $ params_term $ adaptive_flags_term
      $ sizes $ reps $ algorithm $ csv)

(* --- trace --- *)

let trace () params horizon csv_path dot_path =
  let net = build_network params in
  let rng = Rng.create params.seed in
  let source = Run.source_of net None in
  let t0 = Obs.Clock.now_s () in
  let result = Async_cut.run ~horizon ~record_trace:true rng net ~source in
  let wall_s = Obs.Clock.now_s () -. t0 in
  Printf.printf "%s: %s at time %.4f (%d informing events, %d steps)\n"
    net.Dynet.name
    (if result.Async_result.complete then "complete" else "incomplete")
    result.Async_result.time result.Async_result.events
    result.Async_result.steps;
  let tr = result.Async_result.trace in
  let n = net.Dynet.n in
  (* Milestones and Lemma 3.1 phase structure. *)
  List.iter
    (fun frac ->
      match Trace.time_to_fraction tr ~n frac with
      | Some t -> Printf.printf "  %3.0f%% informed at t = %.4f\n" (100. *. frac) t
      | None -> Printf.printf "  %3.0f%% informed: not reached\n" (100. *. frac))
    [ 0.1; 0.5; 0.9; 1.0 ];
  let phases = Trace.doubling_phases tr ~n in
  Printf.printf "  %d doubling phases (a-priori bound %d)\n" (List.length phases)
    (Trace.phase_count_bound ~n);
  (match csv_path with
  | Some path ->
    let rows =
      Array.to_list
        (Array.map
           (fun (t, c) -> [ Printf.sprintf "%.6f" t; string_of_int c ])
           tr)
    in
    Export.write_file path (Export.csv_of_rows ~header:[ "time"; "informed" ] rows);
    Printf.printf "  trajectory written to %s\n" path
  | None -> ());
  (match dot_path with
  | Some path ->
    (* Final graph snapshot with the informed set highlighted. *)
    let inst = net.Dynet.spawn (Rng.create params.seed) in
    let g = (Dynet.next inst ~informed:result.Async_result.informed).Dynet.graph in
    Export.write_file path
      (Export.to_dot ~name:"rumor" ~highlight:result.Async_result.informed g);
    Printf.printf "  DOT snapshot written to %s\n" path
  | None -> ());
  (* Per-step progress deltas + manifest into the sink. *)
  if Obs.Sink.active () then begin
    let informed = ref 1 in
    Array.iteri
      (fun step delta ->
        informed := !informed + delta;
        Obs.Sink.append_jsonl
          (Printf.sprintf "trace-%s.jsonl" net.Dynet.name)
          (Obs.Json.Obj
             [
               ("network", Obs.Json.String net.Dynet.name);
               ("step", Obs.Json.Int step);
               ("delta", Obs.Json.Int delta);
               ("informed", Obs.Json.Int !informed);
             ]))
      (Trace.per_step_progress tr)
  end;
  write_manifest ~kind:"trace"
    ~id:(Printf.sprintf "trace-%s" net.Dynet.name)
    ~engine:"cut" ~n:net.Dynet.n ~network:net.Dynet.name
    ~extra:
      [
        ("complete", Obs.Json.Bool result.Async_result.complete);
        ("time", Obs.Json.Float result.Async_result.time);
        ("events", Obs.Json.Int result.Async_result.events);
        ("steps", Obs.Json.Int result.Async_result.steps);
      ]
    params wall_s

let trace_cmd =
  let horizon =
    Arg.(value & opt float 1e6 & info [ "horizon" ] ~docv:"H" ~doc:"Time budget.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Write the (time, informed) trajectory as CSV.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"PATH"
          ~doc:"Write a Graphviz snapshot of the step-0 graph with the final informed set highlighted.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run once with trajectory recording; print milestones and phases.")
    Term.(const trace $ obs_term $ params_term $ horizon $ csv $ dot)

(* --- faults --- *)

let faults_cmd_run () () params engine reps horizon loss crash recover
    slow_frac slow_rate part_from part_until part_frac max_events checkpoint =
  let net = build_network params in
  let rng = Rng.create params.seed in
  let n = net.Dynet.n in
  let engine =
    match engine with
    | "cut" -> Rumor_sim.Run.Cut
    | "tick" -> Rumor_sim.Run.Tick
    | other -> failwith (Printf.sprintf "unknown engine %S" other)
  in
  let churn =
    if crash > 0. || recover > 0. then
      Some { Fault_plan.crash; recover }
    else None
  in
  let node_rate =
    if slow_frac > 0. then begin
      let cutoff = int_of_float (Float.round (slow_frac *. float_of_int n)) in
      Some (fun u -> if u < cutoff then slow_rate else 1.0)
    end
    else None
  in
  let partitions =
    if part_until > part_from then begin
      let cutoff = int_of_float (Float.round (part_frac *. float_of_int n)) in
      [
        {
          Fault_plan.from_step = part_from;
          until_step = part_until;
          side = (fun u -> u < cutoff);
        };
      ]
    end
    else []
  in
  let plan = Fault_plan.make ~loss ?node_rate ?churn ~partitions () in
  let t0 = Obs.Clock.now_s () in
  let sweep =
    Rumor_sim.Run.async_spread_sweep ~reps ~horizon ~engine ~faults:plan
      ?max_events ?checkpoint rng net
  in
  let wall_s = Obs.Clock.now_s () -. t0 in
  let finished, censored, failed = Rumor_sim.Run.sweep_counts sweep in
  Printf.printf "faulty async on %s (n = %d, engine %s):\n" net.Dynet.name n
    (match engine with Rumor_sim.Run.Cut -> "cut" | Tick -> "tick");
  Printf.printf "  plan: loss %.2f%s%s%s\n" loss
    (match churn with
    | Some { Fault_plan.crash; recover } ->
      Printf.sprintf ", churn crash %.2f / recover %.2f (availability %.2f)"
        crash recover
        (Fault_plan.availability { Fault_plan.crash; recover })
    | None -> "")
    (if slow_frac > 0. then
       Printf.sprintf ", %.0f%% of nodes at relative rate %.2f"
         (100. *. slow_frac) slow_rate
     else "")
    (if partitions <> [] then
       Printf.sprintf ", partition of the first %.0f%% during steps [%d, %d)"
         (100. *. part_frac) part_from part_until
     else "");
  Printf.printf "  outcomes: %d finished, %d censored, %d failed\n" finished
    censored failed;
  (match Rumor_sim.Run.first_failure sweep with
  | Some msg -> Printf.printf "  first failure: %s\n" msg
  | None -> ());
  let usable = Rumor_sim.Run.usable_times sweep in
  if Array.length usable > 0 then
    Printf.printf "  spread time over finished runs: %s\n"
      (Format.asprintf "%a" Summary.pp (Summary.of_samples usable))
  else Printf.printf "  no replicate finished before the horizon/budget.\n";
  (match checkpoint with
  | Some path ->
    Printf.printf "  checkpoint written to %s (re-run to resume/extend)\n" path
  | None -> ());
  write_manifest ~kind:"faults"
    ~id:(Printf.sprintf "faults-%s" net.Dynet.name)
    ~engine:(match engine with Rumor_sim.Run.Cut -> "cut" | Tick -> "tick")
    ~n ~reps ~network:net.Dynet.name
    ~extra:
      ([
         ("loss", Obs.Json.Float loss);
         ("finished", Obs.Json.Int finished);
         ("censored", Obs.Json.Int censored);
         ("failed", Obs.Json.Int failed);
       ]
      @ pool_manifest_extra ())
    params wall_s

let faults_cmd =
  let engine =
    Arg.(
      value & opt string "cut"
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"Async engine: cut or tick.")
  in
  let reps =
    Arg.(value & opt int 30 & info [ "reps" ] ~docv:"R" ~doc:"Monte-Carlo repetitions.")
  in
  let horizon =
    Arg.(
      value & opt float 1e5
      & info [ "horizon" ] ~docv:"H" ~doc:"Time budget per run.")
  in
  let loss =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"P"
          ~doc:"Per-message loss probability (thinning: equivalent to rate 1-P).")
  in
  let crash =
    Arg.(
      value & opt float 0.
      & info [ "crash" ] ~docv:"P" ~doc:"Per-step crash probability (churn).")
  in
  let recover =
    Arg.(
      value & opt float 0.
      & info [ "recover" ] ~docv:"P" ~doc:"Per-step recovery probability (churn).")
  in
  let slow_frac =
    Arg.(
      value & opt float 0.
      & info [ "slow-frac" ] ~docv:"F"
          ~doc:"Fraction of nodes whose clock runs at --slow-rate.")
  in
  let slow_rate =
    Arg.(
      value & opt float 0.5
      & info [ "slow-rate" ] ~docv:"R"
          ~doc:"Relative clock rate of the slow nodes.")
  in
  let part_from =
    Arg.(
      value & opt int 0
      & info [ "partition-from" ] ~docv:"T" ~doc:"First step of the partition window.")
  in
  let part_until =
    Arg.(
      value & opt int 0
      & info [ "partition-until" ] ~docv:"T"
          ~doc:"First step after the partition window (0 = no partition).")
  in
  let part_frac =
    Arg.(
      value & opt float 0.5
      & info [ "partition-frac" ] ~docv:"F"
          ~doc:"Fraction of nodes cut off by the partition.")
  in
  let max_events =
    Arg.(
      value & opt (some int) None
      & info [ "max-events" ] ~docv:"B"
          ~doc:"Watchdog: per-replicate event budget; overruns are censored.")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:"Checkpoint replicate outcomes here; resumes if the file exists.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Hardened Monte-Carlo sweep under injected faults: message loss, \
          crash/recovery churn, slow clocks, partition windows; replicate \
          failures are isolated, runaways censored, outcomes checkpointed.  \
          Replicates run on -j/--jobs domains (bit-identical samples).")
    Term.(
      const faults_cmd_run $ obs_term $ jobs_term $ params_term $ engine $ reps
      $ horizon $ loss
      $ crash $ recover $ slow_frac $ slow_rate $ part_from $ part_until
      $ part_frac $ max_events $ checkpoint)

(* --- experiment --- *)

(* Campaign-wide adaptive opt-in: installs the process default that
   [Workloads.measure_async] consults, so replicate loops buried in
   experiment code stop sequentially without any per-experiment
   plumbing.  Each experiment's own replicate count stays the budget. *)
let adaptive_rel_width_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "adaptive-rel-width" ] ~docv:"R"
        ~doc:
          "Adaptive opt-in for experiment replicate loops: stop each \
           Monte-Carlo measurement once the CI half-width on its mean \
           spread time reaches $(docv) times the running mean (each \
           experiment's replicate count remains the budget; decided \
           prefixes stay bit-identical to fixed-count runs).")

let setup_default_adaptive = function
  | Some r -> Run.set_default_adaptive (Some (Adaptive.config (Adaptive.Rel r)))
  | None -> ()

let experiment () () adaptive_rel id full seed =
  setup_default_adaptive adaptive_rel;
  match String.lowercase_ascii id with
  | "all" -> Rumor_experiments.Registry.run_all ~full ~seed ()
  | id -> (
    match Rumor_experiments.Registry.find id with
    | Some e -> Rumor_experiments.Experiment.print ~full ~seed e
    | None ->
      Printf.eprintf "unknown experiment %S; known: %s\n" id
        (String.concat ", "
           (List.map
              (fun e -> e.Rumor_experiments.Experiment.id)
              Rumor_experiments.Registry.all));
      exit 2)

let experiment_cmd =
  let id =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (E1..E12, A1, A2, O1, B1, R1, F1, L) or 'all'.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Full-size sweeps instead of quick mode.")
  in
  let seed = seed_arg in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run a registered paper-validation experiment.")
    Term.(
      const experiment $ obs_term $ jobs_term $ adaptive_rel_width_arg $ id
      $ full $ seed)

(* --- campaign --- *)

let print_outcomes outcomes =
  List.iter
    (fun (id, outcome) ->
      Printf.printf "  %-4s %s\n" id
        (match outcome with
        | Campaign.Done wall -> Printf.sprintf "done (%.1fs)" wall
        | Campaign.Cached -> "done (journaled by a previous run)"
        | Campaign.Quarantined err -> Printf.sprintf "quarantined: %s" err
        | Campaign.Interrupted -> "interrupted (re-run with --resume)"
        | Campaign.Not_run -> "not run"))
    outcomes

(* Multi-process path: fork [workers] re-execs of this binary in the
   hidden [worker] mode; each pulls leased task batches from the
   coordinator over the campaign directory's Unix-domain socket.  The
   captured per-task outputs land in <dir>/tasks/<id>.out and are
   byte-identical to a --workers 1 run whatever dies in between. *)
let campaign_multiproc ~ids ~dir ~resume ~retries ~fail_budget ~full ~seed
    ~workers ~min_workers ~batch ~heartbeat_timeout ~chaos ~listen ~token
    ~adaptive_rel task_ids =
  Campaign.install_signal_handlers ();
  let config =
    {
      (Coordinator.default_config ~dir ~workers) with
      Coordinator.min_workers;
      batch;
      resume;
      retries;
      fail_budget;
      seed;
      heartbeat_timeout_s = heartbeat_timeout;
      chaos_kill_every_s = chaos;
      listen;
      token;
    }
  in
  (match listen with
  | Some (h, p) ->
    Printf.printf
      "campaign: accepting remote workers on %s:%d%s (bound port in %s)\n%!" h
      p
      (if token = None then "" else " (token required)")
      (Coordinator.port_path config)
  | None -> ());
  let spawn ~slot ~socket =
    let args =
      [
        "rumor"; "worker"; "--socket"; socket; "--id"; string_of_int slot;
        "--tasks-dir"; Coordinator.tasks_dir config; "--seed";
        string_of_int seed;
      ]
      @ (if full then [ "--full" ] else [])
      @ (match adaptive_rel with
        | Some r -> [ "--adaptive-rel-width"; string_of_float r ]
        | None -> [])
    in
    Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
      Unix.stdout Unix.stderr
  in
  let summary = Coordinator.run ~spawn config task_ids in
  Printf.printf "campaign: %d task%s under %s, %d worker process%s%s%s\n"
    (List.length task_ids)
    (if List.length task_ids = 1 then "" else "s")
    dir workers
    (if workers = 1 then "" else "es")
    (if summary.Coordinator.resumed then " (resumed)" else "")
    (match chaos with
    | Some d -> Printf.sprintf " (chaos: kill every %gs)" d
    | None -> "");
  print_outcomes summary.Coordinator.outcomes;
  if summary.Coordinator.reassignments > 0 then
    Printf.printf "  %d task reassignment%s after reclaimed leases\n"
      summary.Coordinator.reassignments
      (if summary.Coordinator.reassignments = 1 then "" else "s");
  if summary.Coordinator.fences + summary.Coordinator.replay_fenced > 0 then
    Printf.printf "  %d stale result%s fenced (%d live, %d at replay)\n"
      (summary.Coordinator.fences + summary.Coordinator.replay_fenced)
      (if summary.Coordinator.fences + summary.Coordinator.replay_fenced = 1
       then ""
       else "s")
      summary.Coordinator.fences summary.Coordinator.replay_fenced;
  if summary.Coordinator.worker_deaths + summary.Coordinator.chaos_kills > 0
  then
    Printf.printf "  %d worker death%s (%d chaos kills), %d restart%s\n"
      (summary.Coordinator.worker_deaths + summary.Coordinator.chaos_kills)
      (if summary.Coordinator.worker_deaths + summary.Coordinator.chaos_kills
          = 1
       then ""
       else "s")
      summary.Coordinator.chaos_kills summary.Coordinator.worker_restarts
      (if summary.Coordinator.worker_restarts = 1 then "" else "s");
  if summary.Coordinator.remote_reconnects > 0 then
    Printf.printf "  %d remote reconnect%s resumed an existing worker slot\n"
      summary.Coordinator.remote_reconnects
      (if summary.Coordinator.remote_reconnects = 1 then "" else "s");
  if summary.Coordinator.rejected > 0 then
    Printf.printf "  %d hello%s rejected at admission (token/version)\n"
      summary.Coordinator.rejected
      (if summary.Coordinator.rejected = 1 then "" else "s");
  if summary.Coordinator.wal_corrupt_records > 0 then
    Printf.printf "  %d corrupt journal record%s quarantined on recovery\n"
      summary.Coordinator.wal_corrupt_records
      (if summary.Coordinator.wal_corrupt_records = 1 then "" else "s");
  if summary.Coordinator.interrupted then
    Printf.printf
      "campaign interrupted; resume with: rumor campaign %s --dir %s \
       --workers %d --resume\n"
      ids dir workers;
  if summary.Coordinator.aborted then
    Printf.printf "campaign aborted (min-workers or failure budget)\n";
  Printf.printf "outputs: %s/<id>.out\nmanifest: %s\n"
    (Coordinator.tasks_dir config)
    (Coordinator.manifest_path config);
  exit (Coordinator.exit_code summary)

let campaign () () ids dir resume deadline retries backoff fail_budget full
    seed workers min_workers batch heartbeat_timeout chaos listen token
    adaptive_rel =
  setup_default_adaptive adaptive_rel;
  let experiments =
    match String.lowercase_ascii (String.trim ids) with
    | "all" -> Rumor_experiments.Registry.all
    | spec ->
      List.map
        (fun id ->
          let id = String.trim id in
          match Rumor_experiments.Registry.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" id
              (String.concat ", " Rumor_experiments.Registry.ids);
            exit 2)
        (String.split_on_char ',' spec)
  in
  if workers > 0 || listen <> None then
    campaign_multiproc ~ids ~dir ~resume ~retries ~fail_budget ~full ~seed
      ~workers ~min_workers ~batch ~heartbeat_timeout ~chaos ~listen ~token
      ~adaptive_rel
      (List.map (fun e -> e.Rumor_experiments.Experiment.id) experiments)
  else begin
    let tasks =
      List.map
        (fun e ->
          {
            Campaign.id = e.Rumor_experiments.Experiment.id;
            run = (fun () -> Rumor_experiments.Experiment.print ~full ~seed e);
          })
        experiments
    in
    Campaign.install_signal_handlers ();
    let config =
      {
        (Campaign.default_config ~dir) with
        Campaign.resume;
        deadline_s = deadline;
        retries;
        backoff_s = backoff;
        fail_budget;
      }
    in
    let summary = Campaign.run config tasks in
    Printf.printf "campaign: %d task%s under %s%s\n"
      (List.length tasks)
      (if List.length tasks = 1 then "" else "s")
      dir
      (if summary.Campaign.resumed then " (resumed)" else "");
    print_outcomes summary.Campaign.outcomes;
    if summary.Campaign.retries > 0 then
      Printf.printf "  %d transient retr%s\n" summary.Campaign.retries
        (if summary.Campaign.retries = 1 then "y" else "ies");
    if summary.Campaign.wal_corrupt_records > 0 then
      Printf.printf "  %d corrupt journal record%s quarantined on recovery\n"
        summary.Campaign.wal_corrupt_records
        (if summary.Campaign.wal_corrupt_records = 1 then "" else "s");
    if summary.Campaign.interrupted then
      Printf.printf
        "campaign interrupted; resume with: rumor campaign %s --dir %s \
         --resume\n"
        ids dir;
    if summary.Campaign.aborted then
      Printf.printf "campaign aborted: quarantined fraction exceeded %.2f\n"
        fail_budget;
    Printf.printf "manifest: %s\n" (Campaign.manifest_path config);
    exit (Campaign.exit_code summary)
  end

let campaign_cmd =
  let ids =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"IDS"
          ~doc:"Experiment id, comma-separated list, or 'all'.")
  in
  let dir =
    Arg.(
      value & opt string "campaign"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Campaign directory: the durable journal (campaign.wal) and \
                the manifest (campaign.manifest.json) live here.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Reuse the journal in --dir: journaled-done tasks are \
                skipped and the rest re-run bit-identically (replicate RNG \
                streams are index-keyed).  Without this flag a fresh \
                journal is started.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"S"
          ~doc:"Per-replicate wall-clock deadline in seconds; an expired \
                replicate is censored (harness.deadline_censored) and fed \
                to the censoring-aware estimators.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"K"
          ~doc:"Extra attempts per task after a transient failure \
                (I/O errors, out-of-memory); deterministic failures are \
                quarantined immediately.")
  in
  let backoff =
    Arg.(
      value & opt float 0.5
      & info [ "backoff" ] ~docv:"S"
          ~doc:"Base exponential backoff between retry attempts.")
  in
  let fail_budget =
    Arg.(
      value & opt float 1.0
      & info [ "fail-budget" ] ~docv:"F"
          ~doc:"Abort the campaign once quarantined tasks exceed this \
                fraction of the task list (1.0 disables the gate).")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Full-size sweeps instead of quick mode.")
  in
  let duration = duration_conv in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Fork $(docv) worker processes and distribute tasks over a \
             Unix-domain socket with lease/epoch fencing; dead workers \
             (crash, OOM-kill, heartbeat timeout) have their leases \
             reclaimed and tasks reassigned.  Captured outputs \
             (<dir>/tasks/<id>.out) are byte-identical to --workers 1.  \
             0 (the default) keeps the single-process campaign runner.")
  in
  let min_workers =
    Arg.(
      value & opt int 1
      & info [ "min-workers" ] ~docv:"N"
          ~doc:
            "Abort the campaign when live (non-demoted) workers fall \
             below $(docv).")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"K"
          ~doc:"Tasks per lease grant (reassignment granularity).")
  in
  let heartbeat_timeout =
    Arg.(
      value & opt duration 30.
      & info [ "heartbeat-timeout" ] ~docv:"DUR"
          ~doc:
            "Declare a worker dead after $(docv) of heartbeat silence \
             (e.g. 10s, 500ms); its late results are fenced.")
  in
  let chaos =
    Arg.(
      value & opt (some duration) None
      & info [ "chaos-kill-every" ] ~docv:"DUR"
          ~doc:
            "Chaos mode: SIGKILL a random live worker every $(docv).  \
             Chaos kills charge no restart or retry budget — they \
             exercise the recovery machinery, which must still produce \
             outputs byte-identical to an undisturbed run.")
  in
  let listen =
    Arg.(
      value & opt (some hostport_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Also accept remote workers ($(b,rumor worker --connect)) \
             over TCP on $(docv) (bare PORT binds 127.0.0.1; port 0 asks \
             the kernel — the bound port is written to \
             $(i,DIR)/coord.port).  Remote workers present a versioned \
             hello and negotiate per-frame CRC trailers; --workers may \
             be 0 to run with remote workers only.")
  in
  let token =
    Arg.(
      value & opt (some string) None
      & info [ "token" ] ~docv:"TOKEN"
          ~doc:
            "Campaign token remote workers must present in their hello; \
             a mismatch is rejected at admission.  Without this flag any \
             remote worker is admitted.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run registry experiments under the crash-safe supervised \
          harness: durable CRC-framed journal, per-replicate wall-clock \
          deadlines, transient retry with backoff, a failure budget, and \
          graceful SIGINT/SIGTERM shutdown with --resume continuing \
          bit-identically.  With --workers N, tasks are distributed over \
          N supervised worker processes with lease/epoch fencing and \
          crash recovery.")
    Term.(
      const campaign $ obs_term $ jobs_term $ ids $ dir $ resume $ deadline
      $ retries $ backoff $ fail_budget $ full $ seed_arg $ workers
      $ min_workers $ batch $ heartbeat_timeout $ chaos $ listen $ token
      $ adaptive_rel_width_arg)

(* --- worker: forked by campaign --workers, or started by hand with
   --connect on another machine --- *)

let worker_main () () socket connect token id tasks_dir seed full adaptive_rel
    =
  setup_default_adaptive adaptive_rel;
  let transport =
    match (socket, connect) with
    | Some s, None -> Worker.Unix_sock s
    | None, Some (host, port) -> Worker.Tcp { host; port; token }
    | Some _, Some _ ->
      prerr_endline "rumor worker: --socket and --connect are exclusive";
      exit 2
    | None, None ->
      prerr_endline "rumor worker: one of --socket or --connect is required";
      exit 2
  in
  let tasks_dir =
    match tasks_dir with
    | Some d -> d
    | None ->
      (* Remote workers inline their captured output in the result
         frame; the local spool only holds in-flight partials. *)
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "rumor-worker-%d" (Unix.getpid ()))
      in
      (try Unix.mkdir d 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      d
  in
  (* The coordinator owns shutdown: a terminal SIGINT must not tear the
     worker out from under an active lease (the Stop frame or a
     reclaimed lease handles every orderly path). *)
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let run_task task =
    match Rumor_experiments.Registry.find task with
    | Some e -> Rumor_experiments.Experiment.print ~full ~seed e
    | None -> failwith (Printf.sprintf "unknown experiment %S" task)
  in
  exit (Worker.run ~transport ~id ~tasks_dir ~run_task ())

let worker_cmd =
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Coordinator Unix-domain socket path (local workers forked \
             by $(b,rumor campaign --workers)).")
  in
  let connect =
    Arg.(
      value & opt (some hostport_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Dial a remote coordinator started with $(b,rumor campaign \
             --listen).  The worker reconnects with jittered exponential \
             backoff on connection loss, resumes its worker id and \
             re-sends unacknowledged results; per-frame CRC trailers \
             are negotiated at admission.")
  in
  let token =
    Arg.(
      value & opt (some string) None
      & info [ "token" ] ~docv:"TOKEN"
          ~doc:
            "Campaign token to present in the hello; must match the \
             coordinator's $(b,--token) or admission is rejected \
             (exit 3).")
  in
  let id =
    Arg.(
      value & opt int (-1)
      & info [ "id" ] ~docv:"SLOT"
          ~doc:
            "Worker slot number.  With --connect, -1 (the default) lets \
             the coordinator assign an id in its Welcome.")
  in
  let tasks_dir =
    Arg.(
      value & opt (some string) None
      & info [ "tasks-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for captured task outputs (required with \
             --socket, where the coordinator reads the files; remote \
             workers default to a private temp spool and ship the bytes \
             in the result frame).")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Full-size sweeps instead of quick mode.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Campaign worker process: forked by $(b,rumor campaign \
          --workers) over a Unix-domain socket, or started by hand with \
          $(b,--connect HOST:PORT) to join a remote campaign over TCP \
          with reconnect/resume and frame CRCs.")
    Term.(
      const worker_main $ obs_term $ jobs_term $ socket $ connect $ token
      $ id $ tasks_dir $ seed_arg $ full $ adaptive_rel_width_arg)

(* --- netchaos: deterministic TCP chaos proxy --- *)

let netchaos_main () listen forward seed latency jitter bandwidth drop dup
    corrupt truncate reset reset_after max_resets =
  let listen_host, listen_port = listen in
  let forward_host, forward_port = forward in
  let fault =
    {
      Netchaos.latency_s = latency;
      jitter_s = jitter;
      bandwidth_bps = bandwidth;
      drop_p = drop;
      dup_p = dup;
      corrupt_p = corrupt;
      truncate_p = truncate;
      reset_p = reset;
      reset_after_bytes = reset_after;
      max_resets;
    }
  in
  let t =
    Netchaos.start ~seed ~listen_host ~port:listen_port ~forward_host
      ~forward_port fault
  in
  Printf.printf "netchaos: listening on %d, forwarding to %s:%d (seed %d)\n%!"
    (Netchaos.port t) forward_host forward_port seed;
  let stop = ref false in
  let on_sig _ = stop := true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_sig)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_sig)
   with Invalid_argument _ | Sys_error _ -> ());
  while not !stop do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Netchaos.stop t;
  let s = Netchaos.stats t in
  Printf.printf
    "netchaos: %d conn%s, %d chunk%s (%d bytes); dropped %d, duplicated %d, \
     corrupted %d, truncated %d, reset %d\n"
    s.Netchaos.conns
    (if s.Netchaos.conns = 1 then "" else "s")
    s.Netchaos.chunks
    (if s.Netchaos.chunks = 1 then "" else "s")
    s.Netchaos.bytes s.Netchaos.dropped_chunks s.Netchaos.dup_chunks
    s.Netchaos.corrupted_chunks s.Netchaos.truncated_chunks
    s.Netchaos.resets

let netchaos_cmd =
  let prob_conv : float Arg.conv =
    let parse s =
      match float_of_string_opt s with
      | Some p when p >= 0. && p <= 1. -> Ok p
      | Some _ -> Error (`Msg "probability must be in [0, 1]")
      | None -> Error (`Msg (Printf.sprintf "invalid probability %S" s))
    in
    Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%g" p)
  in
  let listen =
    Arg.(
      value & opt hostport_conv ("127.0.0.1", 0)
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Listen address (default 127.0.0.1 with a kernel-assigned \
             port, printed on startup).")
  in
  let forward =
    Arg.(
      required & opt (some hostport_conv) None
      & info [ "forward" ] ~docv:"HOST:PORT"
          ~doc:"Forward every accepted connection to $(docv).")
  in
  let latency =
    Arg.(
      value & opt duration_conv 0.
      & info [ "latency" ] ~docv:"DUR"
          ~doc:"Fixed one-way delay added to every chunk (e.g. 20ms).")
  in
  let jitter =
    Arg.(
      value & opt duration_conv 0.
      & info [ "jitter" ] ~docv:"DUR"
          ~doc:"Uniform extra delay in [0, $(docv)) per chunk.")
  in
  let bandwidth =
    Arg.(
      value & opt (some int) None
      & info [ "bandwidth" ] ~docv:"BPS"
          ~doc:"Per-direction throughput cap in bytes per second.")
  in
  let drop =
    Arg.(
      value & opt prob_conv 0.
      & info [ "drop" ] ~docv:"P"
          ~doc:"Probability a chunk is silently discarded.")
  in
  let dup =
    Arg.(
      value & opt prob_conv 0.
      & info [ "dup" ] ~docv:"P"
          ~doc:"Probability a chunk is delivered twice.")
  in
  let corrupt =
    Arg.(
      value & opt prob_conv 0.
      & info [ "corrupt" ] ~docv:"P"
          ~doc:
            "Probability one byte of a chunk is flipped (the frame CRC \
             must catch it).")
  in
  let truncate =
    Arg.(
      value & opt prob_conv 0.
      & info [ "truncate" ] ~docv:"P"
          ~doc:
            "Probability a chunk is cut in half and the link then reset.")
  in
  let reset =
    Arg.(
      value & opt prob_conv 0.
      & info [ "reset" ] ~docv:"P"
          ~doc:
            "Probability the link is abortively reset (ECONNRESET at the \
             peers) before a chunk.")
  in
  let reset_after =
    Arg.(
      value & opt (some int) None
      & info [ "reset-after" ] ~docv:"BYTES"
          ~doc:
            "Reset each connection once it has carried $(docv) bytes in \
             one direction.")
  in
  let max_resets =
    Arg.(
      value & opt (some int) None
      & info [ "max-resets" ] ~docv:"N"
          ~doc:
            "Global budget for resets + truncations (use 1 for \
             'exactly one forced failure'); unlimited when absent.")
  in
  Cmd.v
    (Cmd.info "netchaos"
       ~doc:
         "Deterministic TCP chaos proxy: forward connections while \
          injecting latency, jitter, bandwidth caps, chunk drops, \
          duplicates, corruption, truncation and abortive resets, all \
          scheduled by a seed.  Put $(b,rumor worker --connect) traffic \
          behind it and the campaign must still produce byte-identical \
          outputs.  Runs until SIGINT/SIGTERM, then prints fault \
          counters.")
    Term.(
      const netchaos_main $ obs_term $ listen $ forward $ seed_arg $ latency
      $ jitter $ bandwidth $ drop $ dup $ corrupt $ truncate $ reset
      $ reset_after $ max_resets)

(* --- obs --- *)

let obs_dump () =
  (* The engines register their counters at module initialisation, so
     the dump shows the full registry shape (values are zero unless a
     command ran in this process). *)
  Obs.Metrics.enable ();
  print_endline
    (Obs.Json.to_string ~pretty:true
       (Obs.Json.Obj
          [
            ("metrics", Obs.Metrics.snapshot ());
            ("spans", Obs.Span.snapshot ());
          ]))

let obs_dump_cmd =
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Print the metric registry (counters, gauges, histograms, spans) as \
          JSON.")
    Term.(const obs_dump $ const ())

let obs_compare base_path current_path tolerance =
  let load path =
    match Obs.Bench_report.load path with
    | Ok r -> r
    | Error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 2
  in
  let baseline = load base_path in
  let current = load current_path in
  let cmp : Obs.Bench_report.comparison =
    Obs.Bench_report.compare ~tolerance ~baseline ~current ()
  in
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right; Right; Left ]
      [ "entry"; "base"; "current"; "ratio"; "status" ]
  in
  let fmt_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let add status (d : Obs.Bench_report.delta) =
    Table.add_row table
      [
        d.entry; fmt_ns d.base_ns; fmt_ns d.current_ns;
        Printf.sprintf "%.3f" d.ratio; status;
      ]
  in
  List.iter (add "REGRESSION") cmp.regressions;
  List.iter (add "improved") cmp.improvements;
  List.iter (add "ok") cmp.stable;
  Table.print
    ~title:
      (Printf.sprintf "bench comparison: %s (rev %s) -> %s (rev %s)" base_path
         baseline.Obs.Bench_report.rev current_path
         current.Obs.Bench_report.rev)
    table;
  List.iter (Printf.printf "only in baseline: %s\n") cmp.only_base;
  List.iter (Printf.printf "no baseline for: %s\n") cmp.only_current;
  (match cmp.counter_drift with
  | [] -> ()
  | drift ->
    print_endline
      "counter drift (informational — same-seed runs are deterministic, so \
       the code path changed):";
    List.iter
      (fun (name, b, c) -> Printf.printf "  %-40s %d -> %d\n" name b c)
      drift);
  if Obs.Bench_report.has_regression cmp then begin
    Printf.printf "RESULT: %d entr%s slower than %.0f%% tolerance\n"
      (List.length cmp.regressions)
      (if List.length cmp.regressions = 1 then "y is" else "ies are")
      (100. *. tolerance);
    exit 1
  end
  else
    Printf.printf "RESULT: no regression beyond %.0f%% tolerance\n"
      (100. *. tolerance)

let obs_compare_cmd =
  let base =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline BENCH_*.json report.")
  in
  let current =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current BENCH_*.json report.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"T"
          ~doc:"Slowdown fraction that flags a regression (0.25 = 25%).")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two bench reports; exit 1 when an entry slowed beyond the \
          tolerance.")
    Term.(const obs_compare $ base $ current $ tolerance)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Observability utilities: dump the metric registry, compare bench \
          reports.")
    [ obs_dump_cmd; obs_compare_cmd ]

(* --- serve --- *)

let serve_run () () dir host port queue_cap cache_cap chunk read_timeout
    throttle no_fsync =
  let config =
    {
      (Serve.Server.default_config ~dir) with
      Serve.Server.host;
      port;
      queue_cap;
      cache_cap;
      chunk;
      read_timeout_s = read_timeout;
      throttle_s = throttle;
      fsync = not no_fsync;
    }
  in
  let t = Serve.Server.create config in
  let stop _ = Serve.Server.stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Printf.printf "rumor serve: listening on %s:%d (cache dir %s, queue %d, \
                 chunk %d)\n%!"
    config.Serve.Server.host (Serve.Server.port t) dir queue_cap chunk;
  Serve.Server.serve t;
  let c = Serve.Server.counters t in
  Printf.printf
    "drained: %d requests — %d hits, %d misses, %d coalesced, %d shed, %d \
     stalled drops, %d errors\n"
    c.Serve.Server.requests c.hits c.misses c.coalesced c.shed c.stalled_drops
    c.errors

let serve_cmd =
  let dir =
    Arg.(
      value & opt string "serve-cache"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Cache directory: the WAL-journaled result store \
                (results.wal), sweep checkpoints and the shutdown manifest \
                (serve.manifest.json) live here; a restarted server serves \
                its warm set again.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Listen address.")
  in
  let port =
    Arg.(
      value & opt int 4123
      & info [ "port" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"K"
          ~doc:"Admission-queue bound; at capacity new queries are shed \
                immediately with an 'overloaded' response.")
  in
  let cache_cap =
    Arg.(
      value & opt int 512
      & info [ "cache-cap" ] ~docv:"K" ~doc:"LRU capacity (cached sweeps).")
  in
  let chunk =
    Arg.(
      value & opt int 8
      & info [ "chunk" ] ~docv:"K"
          ~doc:"Replicates per compute chunk (streamed partial-update \
                granularity).")
  in
  let read_timeout =
    Arg.(
      value & opt duration_conv 30.
      & info [ "read-timeout" ] ~docv:"DUR"
          ~doc:"Drop a connection holding an incomplete request longer \
                than $(docv) (e.g. 500ms, 10s; 0 disables).")
  in
  let throttle =
    Arg.(
      value & opt duration_conv 0.
      & info [ "throttle" ] ~docv:"DUR"
          ~doc:"Testing hook: sleep $(docv) before each compute chunk.")
  in
  let no_fsync =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:"Skip fsync on journal appends (testing only).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived spread-time query service: line-delimited JSON (or \
          length-prefixed frames) over TCP, memoized sweep cache with \
          WAL-backed restart, request coalescing, bounded admission queue \
          with load shedding.")
    Term.(
      const serve_run $ obs_term $ jobs_term $ dir $ host $ port $ queue_cap
      $ cache_cap $ chunk $ read_timeout $ throttle $ no_fsync)

(* --- loadgen --- *)

(* "--mix clique:128:8,er:256:16" -> one query per entry; --distinct K
   clones each with seeds seed, seed+1, ..., seed+K-1 so the cache-hit
   ratio under load is controllable. *)
let parse_mix ~seed ~distinct spec =
  let parse_one item =
    match String.split_on_char ':' (String.trim item) with
    | [ family ] -> Ok (Serve.Query.default ~family ~n:128)
    | [ family; n ] | [ family; n; "" ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Serve.Query.default ~family ~n)
      | None -> Error (Printf.sprintf "bad node count in %S" item))
    | [ family; n; reps ] -> (
      match (int_of_string_opt n, int_of_string_opt reps) with
      | Some n, Some reps ->
        Ok { (Serve.Query.default ~family ~n) with Serve.Query.reps }
      | _ -> Error (Printf.sprintf "bad mix entry %S" item))
    | _ -> Error (Printf.sprintf "bad mix entry %S (want FAMILY:N[:REPS])" item)
  in
  let items = String.split_on_char ',' spec in
  List.fold_right
    (fun item acc ->
      match (acc, parse_one item) with
      | Error _, _ -> acc
      | _, Error e -> Error e
      | Ok acc, Ok q ->
        let clones =
          List.init distinct (fun d ->
              { q with Serve.Query.seed = seed + d })
        in
        Ok (clones @ acc))
    items (Ok [])

let loadgen_run () host port duration concurrency rate mix distinct seed
    stream binary json_out min_hits max_p99 =
  match parse_mix ~seed ~distinct mix with
  | Error e ->
    Printf.eprintf "rumor loadgen: %s\n" e;
    exit 2
  | Ok queries -> (
    (match
       List.find_opt
         (fun q -> not (Family.is_known q.Serve.Query.family))
         queries
     with
    | Some q ->
      Printf.eprintf "rumor loadgen: unknown family %S\n"
        q.Serve.Query.family;
      exit 2
    | None -> ());
    let cfg =
      {
        (Serve.Loadgen.default_config ~port ~queries) with
        Serve.Loadgen.host;
        duration_s = duration;
        concurrency;
        rate;
        stream;
        binary;
      }
    in
    let r = Serve.Loadgen.run cfg in
    if json_out then
      print_endline (Obs.Json.to_string (Serve.Loadgen.report_json r))
    else begin
      Printf.printf
        "loadgen: %d sent, %d ok (%d hits, %d misses, %d coalesced), %d \
         shed, %d errors, %d partials in %.2fs (%.1f req/s)\n"
        r.Serve.Loadgen.sent r.ok r.hits r.misses r.coalesced r.shed r.errors
        r.partials r.wall_s r.rps;
      if r.ok > 0 then
        Printf.printf
          "latency: mean %.4fs  p50 %.4fs  p90 %.4fs  p99 %.4fs  max %.4fs\n"
          r.mean_s r.p50_s r.p90_s r.p99_s r.max_s
    end;
    let failed = ref false in
    (match min_hits with
    | Some m when r.Serve.Loadgen.hits < m ->
      Printf.eprintf "FAIL: %d cache hits < required %d\n"
        r.Serve.Loadgen.hits m;
      failed := true
    | _ -> ());
    (match max_p99 with
    | Some bound
      when r.Serve.Loadgen.ok > 0 && r.Serve.Loadgen.p99_s > bound ->
      Printf.eprintf "FAIL: p99 %.4fs exceeds bound %.4fs\n"
        r.Serve.Loadgen.p99_s bound;
      failed := true
    | _ -> ());
    if !failed then exit 1)

let loadgen_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")
  in
  let port =
    Arg.(
      value & opt int 4123 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let duration =
    Arg.(
      value & opt duration_conv 5.
      & info [ "duration" ] ~docv:"DUR"
          ~doc:"Send phase length (e.g. 10s, 2m).")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "concurrency"; "c" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let rate =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"R"
          ~doc:"Open-loop offered load in requests/second (paced sends \
                regardless of completions — this is what exposes queueing \
                and shedding).  Default: closed loop, one outstanding \
                request per connection.")
  in
  let mix =
    Arg.(
      value & opt string "clique:128:8"
      & info [ "mix" ] ~docv:"SPEC"
          ~doc:"Comma-separated query mix, each entry FAMILY:N[:REPS] \
                (e.g. 'clique:128:8,er:256:16'), cycled round-robin.")
  in
  let distinct =
    Arg.(
      value & opt int 1
      & info [ "distinct" ] ~docv:"K"
          ~doc:"Clone each mix entry $(docv) times with distinct seeds — \
                higher values mean more distinct cache keys (lower hit \
                ratio).")
  in
  let seed =
    Arg.(
      value & opt int 2020 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ] ~doc:"Request streamed partial quantile updates.")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Length-prefixed binary frames instead of JSONL.")
  in
  let json_out =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Print the report as one JSON \
                                           document.")
  in
  let min_hits =
    Arg.(
      value & opt (some int) None
      & info [ "min-hits" ] ~docv:"N"
          ~doc:"Exit 1 unless at least $(docv) responses were cache hits \
                (CI gate).")
  in
  let max_p99 =
    Arg.(
      value & opt (some duration_conv) None
      & info [ "max-p99" ] ~docv:"DUR"
          ~doc:"Exit 1 when p99 latency exceeds $(docv) (CI gate).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a query mix against a running serve daemon (open or closed \
          loop) and report throughput, latency quantiles and the \
          hit/miss/coalesced/shed breakdown.")
    Term.(
      const loadgen_run $ obs_term $ host $ port $ duration $ concurrency
      $ rate $ mix $ distinct $ seed $ stream $ binary $ json_out $ min_hits
      $ max_p99)

(* --- main --- *)

let () =
  let info =
    Cmd.info "rumor" ~version:"1.0.0"
      ~doc:
        "Asynchronous rumor spreading in dynamic networks (Pourmiri & Mans, \
         PODC 2020): simulators, constructions and bounds."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            describe_cmd;
            simulate_cmd;
            bound_cmd;
            sweep_cmd;
            trace_cmd;
            faults_cmd;
            experiment_cmd;
            campaign_cmd;
            worker_cmd;
            netchaos_cmd;
            serve_cmd;
            loadgen_cmd;
            obs_cmd;
          ]))
